#include "core/state_store.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/primitive.hpp"
#include "net/flow.hpp"

namespace xmem::core {

using switchsim::PipelineContext;

StateStorePrimitive::StateStorePrimitive(
    switchsim::ProgrammableSwitch& sw,
    std::vector<control::RdmaChannelConfig> channels, Config config)
    : switch_(&sw),
      channels_(sw, std::move(channels), config.health),
      config_(std::move(config)) {
  assert(config_.max_outstanding > 0);
  assert(config_.combining_window >= 1);
  const std::size_t region_bytes = channels_.at(0).config().region_bytes;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    assert(channels_.at(i).config().region_bytes == region_bytes &&
           "shards must be equal size");
  }
  n_counters_ = (region_bytes / 8) * channels_.size();
  assert(n_counters_ > 0);
  outstanding_.assign(channels_.size(), 0);
  last_progress_.assign(channels_.size(), 0);
  eligible_.resize(channels_.size());
  rto_.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    AdaptiveRtoConfig rc = config_.adaptive_rto;
    rc.jitter_seed ^= i * 0x2545f4914f6cdd1dULL;  // per-shard jitter stream
    rto_.emplace_back(rc);
  }
  channels_.set_health_fn([this](std::size_t shard, ChannelSet::Health h) {
    on_health_change(shard, h);
  });

  if (!config_.sample_fn) {
    const std::uint64_t n = n_counters_;
    const std::uint64_t seed = config_.hash_seed;
    config_.sample_fn =
        [n, seed](const net::Packet& p) -> std::optional<std::uint64_t> {
      auto tuple = net::extract_five_tuple(p);
      if (!tuple) return std::nullopt;
      return net::flow_hash(*tuple, seed) % n;
    };
  }

  sw.add_ingress_stage("state-store",
                       [this](PipelineContext& ctx) { on_ingress(ctx); });
}

void StateStorePrimitive::attach_telemetry(
    telemetry::MetricsRegistry* registry, telemetry::OpTracer* tracer,
    const std::string& prefix) {
  if (registry != nullptr) {
    auto counter = [&](const char* field, const std::uint64_t* value,
                       const char* unit) {
      registry->register_counter(
          prefix + "/" + field,
          [value]() { return static_cast<std::int64_t>(*value); }, unit);
    };
    counter("sampled_packets", &stats_.sampled_packets, "packets");
    counter("fetch_adds_sent", &stats_.fetch_adds_sent, "ops");
    counter("acks_received", &stats_.acks_received, "ops");
    counter("naks_received", &stats_.naks_received, "ops");
    counter("accumulated", &stats_.accumulated, "counts");
    counter("retransmits", &stats_.retransmits, "ops");
    counter("max_outstanding_seen", &stats_.max_outstanding_seen, "ops");
    counter("counts_in_flight_lost", &stats_.counts_in_flight_lost, "counts");
    counter("failover_reissues", &stats_.failover_reissues, "counts");
    counter("duplicate_responses", &stats_.duplicate_responses, "ops");
    registry->register_gauge(
        prefix + "/outstanding",
        [this]() { return static_cast<double>(outstanding()); }, "ops");
    registry->register_gauge(
        prefix + "/unflushed",
        [this]() { return static_cast<double>(unflushed()); }, "counts");
  }
  channels_.attach_telemetry(registry, tracer, prefix);
}

int StateStorePrimitive::outstanding() const {
  int n = 0;
  for (const int o : outstanding_) n += o;
  return n;
}

std::uint64_t StateStorePrimitive::unflushed() const {
  return unflushed_total_;
}

void StateStorePrimitive::on_ingress(PipelineContext& ctx) {
  if (auto msg = roce_view(ctx)) {
    if (auto shard = channels_.owner_of(*msg)) {
      if (!channels_.maybe_cnp(*shard, *msg) &&
          !channels_.maybe_probe_response(*shard, *msg)) {
        handle_response(*shard, *msg);
      }
      ctx.consume();
    }
    return;
  }

  // The original packet is never touched: the primitive works on a
  // conceptual clone-and-truncate, so counting is purely an observation
  // here and the packet continues down the pipeline.
  auto index = config_.sample_fn(ctx.packet);
  if (!index) return;
  ++stats_.sampled_packets;
  record(*index);
}

void StateStorePrimitive::make_eligible(std::uint64_t index) {
  if (eligible_set_.contains(index)) return;
  eligible_[shard_of(index)].push_back(index);
  eligible_set_.insert(index);
}

void StateStorePrimitive::record(std::uint64_t index) {
  // Counts for a down home shard still accumulate below, but the refusal
  // is visible in per-shard routing stats (issue() routes the healthy
  // ones when they actually go out).
  if (!channels_.is_up(shard_of(index))) (void)channels_.route(index);
  auto [it, inserted] = accumulators_.try_emplace(index, 0);
  it->second += 1;
  ++unflushed_total_;
  if (it->second >= config_.combining_window) make_eligible(index);
  issue_from_accumulators();
}

void StateStorePrimitive::issue_from_accumulators() {
  for (std::size_t shard = 0; shard < channels_.size(); ++shard) {
    // A down shard issues nothing: its counts stay in the accumulators —
    // the window-full backpressure path doing double duty as the
    // failover degraded mode — until the shard is marked up again.
    if (!channels_.is_up(shard)) continue;
    while (outstanding_[shard] < config_.max_outstanding &&
           !eligible_[shard].empty()) {
      const std::uint64_t index = eligible_[shard].front();
      eligible_[shard].pop_front();
      eligible_set_.erase(index);
      auto it = accumulators_.find(index);
      if (it == accumulators_.end() || it->second == 0) continue;
      const std::uint64_t add = it->second;
      accumulators_.erase(it);
      unflushed_total_ -= add;
      if (add > 1) stats_.accumulated += add - 1;
      issue(index, add);
    }
  }
}

void StateStorePrimitive::issue(std::uint64_t index, std::uint64_t add) {
  const auto shard = channels_.route(index);
  assert(shard && "issue() only runs against healthy shards");
  const roce::Psn psn =
      channels_.at(*shard).post_fetch_add(counter_va(index), add);
  ++outstanding_[*shard];
  ++stats_.fetch_adds_sent;
  if (static_cast<std::uint64_t>(outstanding_[*shard]) >
      stats_.max_outstanding_seen) {
    stats_.max_outstanding_seen =
        static_cast<std::uint64_t>(outstanding_[*shard]);
  }
  inflight_.emplace(ShardPsn{*shard, psn},
                    Inflight{index, add, switch_->simulator().now()});
  arm_timeout();
}

void StateStorePrimitive::handle_response(std::size_t shard,
                                          const roce::RoceMessage& msg) {
  RdmaChannel& channel = channels_.at(shard);
  const roce::Opcode op = msg.opcode();
  if (op == roce::Opcode::kAtomicAcknowledge) {
    auto it = inflight_.find(ShardPsn{shard, msg.bth.psn});
    if (it == inflight_.end()) {
      ++stats_.duplicate_responses;  // already completed: duplicate/stale
      return;
    }
    const sim::Time rtt = switch_->simulator().now() - it->second.sent_at;
    const bool retransmitted = it->second.retransmitted;
    inflight_.erase(it);
    --outstanding_[shard];
    ++stats_.acks_received;
    last_progress_[shard] = switch_->simulator().now();
    // Karn's rule, both halves: a retransmitted op's RTT is ambiguous, and
    // its ACK must not collapse the backoff either — resetting here would
    // let an undersized RTO re-arm at its old value and storm forever.
    // Only a clean sample (which resets backoff itself) ends the episode.
    if (!retransmitted) rto_[shard].sample(rtt);
    channels_.note_ok(shard);
    channel.trace_complete(msg.bth.psn);
    issue_from_accumulators();
    return;
  }
  if (op == roce::Opcode::kAcknowledge && msg.aeth && msg.aeth->is_nak()) {
    // A duplicated NAK frame must not double-count naks_received or the
    // shard's health streak, and must not trigger a second repost round.
    if (!nak_dedup_.first_time(DedupWindow::key(
            shard, msg.bth.psn, msg.aeth->msn,
            static_cast<std::uint8_t>(msg.aeth->syndrome)))) {
      ++stats_.duplicate_responses;
      return;
    }
    ++stats_.naks_received;
    channels_.note_nak(shard, msg.aeth->syndrome);
    const std::string nak_status =
        std::string("nak:") + roce::to_string(msg.aeth->syndrome);
    if (!config_.reliable) {
      // No recovery: this NAK is the op's final word — close the span and
      // reclaim the window slot now; the count it carried is lost.
      channel.trace_complete(msg.bth.psn, nak_status);
      auto it = inflight_.find(ShardPsn{shard, msg.bth.psn});
      if (it != inflight_.end()) {
        stats_.counts_in_flight_lost += it->second.add;
        inflight_.erase(it);
        --outstanding_[shard];
        issue_from_accumulators();
      }
      return;
    }

    if (msg.aeth->syndrome == roce::AckSyndrome::kNakInvalidRequest) {
      // A retransmitted atomic whose replay-cache entry has expired: the
      // responder executed it long ago, it just cannot replay the
      // original value. Counting-wise the op is complete.
      auto it = inflight_.find(ShardPsn{shard, msg.bth.psn});
      if (it != inflight_.end()) {
        inflight_.erase(it);
        --outstanding_[shard];
        last_progress_[shard] = switch_->simulator().now();
        // The op was by definition retransmitted: Karn says no sample and
        // no backoff reset.
        channel.trace_complete(msg.bth.psn, nak_status);
        issue_from_accumulators();
      }
      return;
    }
    channel.trace_annotate(msg.bth.psn, "nak",
                           roce::to_string(msg.aeth->syndrome));

    // Sequence-error NAK: everything from the responder's expected PSN
    // (echoed in the NAK) onward was not executed. Retransmit just that
    // suffix of this shard's window, in PSN order, and rate-limit bursts:
    // every out-of-order arrival generates a NAK, and answering each with
    // a full repost storm would feed on itself.
    const sim::Time now = switch_->simulator().now();
    if (now - last_goback_ < config_.goback_min_interval) return;
    last_goback_ = now;

    // The expected PSN may be a hole nobody will ever repost — a probe
    // that consumed a PSN while the shard was down, or an op reclaimed
    // at reconnect(). Fill it with a no-op READ so the responder's
    // sequence check can walk past it; the real reposts follow.
    if (!inflight_.contains(ShardPsn{shard, msg.bth.psn})) {
      channel.repost_read(channel.config().base_va, 8, msg.bth.psn);
      ++stats_.retransmits;
    }

    std::vector<roce::Psn> psns;
    psns.reserve(inflight_.size());
    for (const auto& [key, op_state] : inflight_) {
      if (key.shard == shard &&
          roce::psn_distance(msg.bth.psn, key.psn) >= 0) {
        psns.push_back(key.psn);
      }
    }
    std::sort(psns.begin(), psns.end(), [&](roce::Psn a, roce::Psn b) {
      return roce::psn_lt(a, b);
    });
    for (const roce::Psn psn : psns) {
      auto& f = inflight_.at(ShardPsn{shard, psn});
      f.retransmitted = true;  // Karn: its eventual RTT is unusable
      channel.repost_fetch_add(counter_va(f.index), f.add, psn);
      ++stats_.retransmits;
    }
  }
}

void StateStorePrimitive::flush() {
  // Sorted drain: eligibility (and the resulting issue order) must not
  // inherit the accumulator map's hash order.
  std::vector<std::uint64_t> indices;
  indices.reserve(accumulators_.size());
  for (const auto& [index, count] : accumulators_) indices.push_back(index);
  std::sort(indices.begin(), indices.end());
  for (const std::uint64_t index : indices) make_eligible(index);
  issue_from_accumulators();
}

void StateStorePrimitive::on_health_change(std::size_t shard,
                                           ChannelSet::Health health) {
  if (health == ChannelSet::Health::kUp) {
    if (config_.reliable) {
      // The window was held across the outage: replay it in PSN order so
      // the responder's sequence check walks forward through the stream
      // it remembers. Reclaiming here instead would leave PSN holes that
      // no requester ever retransmits — a wedged strict-RC channel.
      last_progress_[shard] = switch_->simulator().now();
      replay_window(shard);
    }
    // The shard's deferred counts have been accumulating; drain them.
    issue_from_accumulators();
    return;
  }
  // Down transition: best-effort mode reclaims the window, counting the
  // in-flight adds lost. Reliable mode HOLDS it — the ops stay in
  // inflight_ for replay on recovery, or are reclaimed by reconnect()
  // when the server returns as a fresh epoch with an empty replay cache.
  if (!config_.reliable) reclaim_shard(shard);
}

void StateStorePrimitive::replay_window(std::size_t shard) {
  std::vector<roce::Psn> psns;
  for (const auto& [key, f] : inflight_) {
    if (key.shard == shard) psns.push_back(key.psn);
  }
  if (psns.empty()) return;
  last_goback_ = switch_->simulator().now();
  std::sort(psns.begin(), psns.end(), [](roce::Psn a, roce::Psn b) {
    return roce::psn_lt(a, b);
  });
  for (const roce::Psn psn : psns) {
    auto& f = inflight_.at(ShardPsn{shard, psn});
    f.retransmitted = true;
    channels_.at(shard).repost_fetch_add(counter_va(f.index), f.add, psn);
    ++stats_.retransmits;
  }
}

void StateStorePrimitive::reconnect(std::size_t shard,
                                    control::RdmaChannelConfig config) {
  // The new NIC epoch never executed this shard's in-flight atomics and
  // its replay cache cannot answer their reposts — those would come back
  // NAK invalid-request and be treated as completed, silently dropping
  // the counts. Reclaim the window first (reliable mode re-accumulates
  // the adds), then swap in the rebuilt channel and let anything
  // reclaimed re-issue immediately if the shard is still routable.
  reclaim_shard(shard);
  channels_.reconnect(shard, std::move(config));
  // The rebuilt channel counts as progress: don't let a stale stamp
  // trigger an immediate replay round against the fresh epoch. RTT
  // history from the old server says nothing about the new one.
  last_progress_[shard] = switch_->simulator().now();
  rto_[shard].reset();
  issue_from_accumulators();
}

void StateStorePrimitive::reclaim_shard(std::size_t shard) {
  std::vector<ShardPsn> keys;
  for (const auto& [key, f] : inflight_) {
    if (key.shard == shard) keys.push_back(key);
  }
  // Reclaim in PSN order (numeric, one shard): trace completion and
  // accumulator re-arming must replay identically run to run.
  std::sort(keys.begin(), keys.end(), [](const ShardPsn& a,
                                         const ShardPsn& b) {
    return a.psn.raw() < b.psn.raw();
  });
  for (const ShardPsn& key : keys) {
    const Inflight f = inflight_.at(key);
    inflight_.erase(key);
    --outstanding_[shard];
    if (config_.reliable) {
      accumulators_[f.index] += f.add;
      unflushed_total_ += f.add;
      stats_.failover_reissues += f.add;
      make_eligible(f.index);
      channels_.at(shard).trace_complete(key.psn, "failover");
    } else {
      stats_.counts_in_flight_lost += f.add;
      channels_.at(shard).trace_complete(key.psn, "lost");
    }
  }
}

void StateStorePrimitive::arm_timeout() {
  if (timeout_.pending()) return;
  sim::Time delay = config_.retransmit_timeout;
  if (config_.adaptive_rto.enabled) {
    // One timer serves all shards: fire at the earliest deadline and let
    // on_timeout() judge each shard against its own (backed-off) RTO.
    delay = rto_[0].rto();
    for (std::size_t i = 1; i < rto_.size(); ++i) {
      delay = std::min(delay, rto_[i].rto());
    }
  }
  timeout_ =
      switch_->simulator().schedule_in(delay, [this]() { on_timeout(); });
}

void StateStorePrimitive::on_timeout() {
  if (inflight_.empty()) {
    return;  // all settled; timer re-arms on the next issue
  }
  const sim::Time now = switch_->simulator().now();
  if (config_.reliable) {
    // Replay each silent shard's whole window in PSN order (an unordered
    // replay would trip the responder's sequence check and NAK-storm).
    // Progress is judged per shard — a healthy shard's ACK stream must
    // not mask a dead one — and every silent replay round is one timeout
    // observation against that shard, which eventually flips a dead
    // shard's health even in reliable mode.
    std::vector<std::uint64_t> window(channels_.size(), 0);
    for (const auto& [key, f] : inflight_) ++window[key.shard];
    for (std::size_t shard = 0; shard < window.size(); ++shard) {
      if (window[shard] == 0) continue;
      if (now - last_progress_[shard] < shard_timeout(shard)) continue;
      rto_[shard].note_timeout();  // the next replay round waits longer
      channels_.note_timeout(shard);
      // Replay even while the shard is marked down: the held window is
      // exactly what the responder's sequence check is waiting on, and
      // the recovery probe can only be answered once the stream has
      // advanced past it.
      replay_window(shard);
    }
  } else {
    // Unreliable mode: reclaim leaked window slots so the primitive keeps
    // working; the in-flight counts are simply lost, which is the
    // accuracy degradation the paper's §7 discussion anticipates. Each
    // expiry is a timeout observation against its shard's health.
    std::vector<ShardPsn> stale;
    for (const auto& [key, f] : inflight_) {
      if (now - f.sent_at >= shard_timeout(key.shard)) stale.push_back(key);
    }
    // Expire in (shard, PSN) order, not hash order: the trace stream
    // and per-shard health observations are part of the replay.
    std::sort(stale.begin(), stale.end(), [](const ShardPsn& a,
                                             const ShardPsn& b) {
      return a.shard != b.shard ? a.shard < b.shard
                                : a.psn.raw() < b.psn.raw();
    });
    std::vector<bool> shard_expired(channels_.size(), false);
    for (const ShardPsn& key : stale) {
      auto it = inflight_.find(key);
      if (it == inflight_.end()) continue;  // reclaimed by a down transition
      stats_.counts_in_flight_lost += it->second.add;
      inflight_.erase(it);
      --outstanding_[key.shard];
      channels_.at(key.shard).trace_complete(key.psn, "lost");
      channels_.note_timeout(key.shard);
      shard_expired[key.shard] = true;
    }
    // One backoff step per shard per round, however many ops expired.
    for (std::size_t shard = 0; shard < shard_expired.size(); ++shard) {
      if (shard_expired[shard]) rto_[shard].note_timeout();
    }
    issue_from_accumulators();
  }
  arm_timeout();
}

}  // namespace xmem::core
