// Remote packet buffer primitive (§4).
//
// A ring buffer of full-frame entries in server DRAM extends one egress
// queue's capacity by ~1000x. When the watched queue builds past the
// divert threshold, every further packet bound to it is encapsulated in
// an RDMA WRITE and shipped to the ring; once the queue drains below the
// resume threshold the primitive pulls entries back with chained RDMA
// READs and re-injects the original frames — FIFO order preserved, as the
// paper requires: while the ring is non-empty, *all* new packets for the
// queue keep going through the ring.
//
// The ring may be striped round-robin over several memory servers ("a
// remote buffer located in one or multiple servers", §2.1) through a
// core::ChannelSet: global slot g lives on stripe g % K at ring position
// g / K. Striping multiplies both capacity and absorb bandwidth, which
// the 8-uplink incast of Fig. 1a needs — the diverted surplus exceeds any
// single server link. When a stripe's server dies the ring degrades to
// drop-tail on that stripe: slots striped onto it become holes (counted
// as drops) while the surviving stripes keep absorbing and draining, and
// FIFO order over the survivors is preserved.
//
// Entry layout in remote memory: [u32 frame_len][frame bytes], one entry
// per fixed-size slot.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/adaptive_rto.hpp"
#include "core/channel_set.hpp"
#include "core/dedup_window.hpp"
#include "switchsim/switch.hpp"

namespace xmem::core {

class PacketBufferPrimitive {
 public:
  struct Config {
    /// The egress port whose queue the primitive protects.
    int watch_port = -1;
    /// Start diverting when the watched queue exceeds this many bytes.
    std::int64_t divert_threshold_bytes = 150 * 1500;
    /// Start loading back when the queue falls to or below this.
    std::int64_t resume_threshold_bytes = 30 * 1500;
    /// Fixed remote slot size; must hold u32 + a max-size frame.
    std::size_t entry_bytes = 2048;
    /// READs kept in flight while draining (the paper's chained-READ
    /// trigger generalized to a small pipeline; depth 1 is the literal
    /// "response triggers the next request"). Applied per channel.
    int read_pipeline_depth = 8;
    /// Reliable stores: every entry WRITE requests an ACK and is
    /// retransmitted (original PSN, kept in switch SRAM) until
    /// acknowledged; a READ for a slot is gated until its WRITE is
    /// acked, and a store aimed at a down stripe is *deferred* (slot
    /// allocated immediately so global FIFO order survives; the entry
    /// posts when the stripe revives) instead of dropped. Requires
    /// gap-tolerant channels (reposts may arrive out of order). Combined
    /// with reliable_loads this is the no-loss mode the chaos harness's
    /// invariants assert.
    bool reliable_stores = false;
    /// §7 extension: recover lost READ data via re-request + reorder
    /// buffer instead of treating it as a packet drop. Across a stripe
    /// failover, reliable mode holds the drain at the dead stripe until
    /// it recovers (stored frames are preserved in its DRAM); best-effort
    /// mode punches holes and keeps draining the survivors.
    bool reliable_loads = false;
    /// Loss-recovery / scavenge timer. Must sit well above the worst-case
    /// queueing delay on the memory link: during an incast, READs wait
    /// behind the WRITE backlog on the same port, and a premature timeout
    /// in unreliable mode discards packets that were merely delayed.
    sim::Time read_timeout = sim::milliseconds(2);
    /// Adaptive recovery timer: when enabled, the scavenge/retransmit
    /// deadline tracks each stripe's measured RTT and backs off
    /// exponentially across silent rounds, replacing the fixed
    /// read_timeout — recovery reacts in RTTs on a healthy fabric and
    /// stops retransmit storms when DCQCN pacing stretches response
    /// times. Disabled keeps the fixed timer.
    AdaptiveRtoConfig adaptive_rto;
    /// When false, entries are stored but never loaded until
    /// set_load_enabled(true) — the "manually start the two steps"
    /// methodology of the paper's §5 microbenchmark.
    bool load_enabled = true;
    /// Remote-buffer-aware ECN (our §2.1 co-design): the ring hides the
    /// real backlog from the egress queue, so the switch's normal
    /// queue-depth marking never fires and end-to-end congestion control
    /// — the paper's backstop for *persistent* overload — stays blind.
    /// When > 0, packets re-injected while the ring holds more than this
    /// many entries get CE-marked (if ECT). 0 disables.
    std::int64_t ecn_mark_ring_depth = 0;
    /// Failover thresholds/probing for the channel set.
    ChannelSet::Config health;
  };

  struct Stats {
    std::uint64_t stored = 0;          // packets written to the ring
    std::uint64_t loaded = 0;          // packets read back and re-injected
    std::uint64_t ring_full_drops = 0; // remote buffer exhausted
    std::uint64_t lost_loads = 0;      // READ data lost (unreliable mode)
    std::uint64_t read_retries = 0;    // reliable-mode re-requests
    std::uint64_t write_retries = 0;   // reliable-store retransmits
    std::uint64_t deferred_stores = 0; // stores parked for a down stripe
    std::uint64_t naks = 0;
    std::uint64_t ecn_marked = 0;      // ring-depth CE marks applied
    std::uint64_t dead_stripe_drops = 0;  // drop-tail on a down stripe
    std::uint64_t duplicate_responses = 0;  // stale/duplicated deliveries
    std::int64_t max_ring_depth = 0;   // high-water mark, in entries
  };

  /// Striped over `channels` (at least one). Registers an ingress stage
  /// and a traffic-manager watcher on `sw`. Every channel's region must
  /// be writable+readable and all regions must be equally sized.
  PacketBufferPrimitive(switchsim::ProgrammableSwitch& sw,
                        std::vector<control::RdmaChannelConfig> channels,
                        Config config);
  /// Single-server convenience (a pool of 1).
  PacketBufferPrimitive(switchsim::ProgrammableSwitch& sw,
                        control::RdmaChannelConfig channel, Config config)
      : PacketBufferPrimitive(
            sw, std::vector<control::RdmaChannelConfig>{std::move(channel)},
            config) {}

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RdmaChannel& channel(std::size_t i = 0) const {
    return channels_.at(i);
  }
  [[nodiscard]] const ChannelSet& channels() const { return channels_; }
  [[nodiscard]] ChannelSet& channels() { return channels_; }
  [[nodiscard]] std::size_t stripe_width() const { return channels_.size(); }
  /// The stripe's RTT estimator (meaningful only with adaptive_rto on).
  [[nodiscard]] const AdaptiveRto& rto(std::size_t stripe) const {
    return rto_[stripe];
  }
  /// Entries currently resident in remote memory.
  [[nodiscard]] std::int64_t ring_depth() const {
    return static_cast<std::int64_t>(head_ - tail_);
  }
  [[nodiscard]] bool diverting() const { return diverting_; }
  /// Total slots across all stripes.
  [[nodiscard]] std::size_t ring_capacity() const { return capacity_; }

  /// True when nothing is in flight or parked anywhere: the ring has
  /// fully drained, every store was acknowledged and no READ or
  /// deferred entry is pending.
  [[nodiscard]] bool quiescent() const {
    return tail_ == head_ && inflight_.empty() && inflight_writes_.empty() &&
           deferred_stores_.empty();
  }

  /// §5 microbenchmark control: gate the load path.
  void set_load_enabled(bool enabled);
  [[nodiscard]] bool load_enabled() const { return config_.load_enabled; }

  /// Register every Stats field plus live ring-depth/diverting gauges
  /// under `<prefix>/...`, and delegate per-stripe channel + health
  /// metrics to `<prefix>/shard<i>/...`. Either pointer may be null.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::OpTracer* tracer,
                        const std::string& prefix);

  /// Swap in a rebuilt channel for `stripe` after its server's RNIC was
  /// restart()ed and ChannelController::reconnect produced `config`. The
  /// restarted server still holds the stripe's DRAM, so outstanding
  /// WRITEs/READs are reposted (duplicates are idempotent) rather than
  /// reclaimed.
  void reconnect(std::size_t stripe, control::RdmaChannelConfig config);

 private:
  void on_ingress(switchsim::PipelineContext& ctx);
  void on_queue_event(switchsim::QueueEvent event, int port,
                      std::int64_t depth_bytes);
  void handle_response(std::size_t channel_index,
                       const roce::RoceMessage& msg);
  void on_health_change(std::size_t shard, ChannelSet::Health health);

  void store_packet(const net::Packet& packet);
  void maybe_issue_reads();
  void drain_reorder_buffer();
  void arm_timeout();
  void on_timeout();

  [[nodiscard]] std::size_t channel_of(std::uint64_t slot) const {
    return static_cast<std::size_t>(slot % channels_.size());
  }
  [[nodiscard]] std::uint64_t slot_va(std::uint64_t slot) const {
    const std::uint64_t within = slot / channels_.size();
    const auto& cfg = channels_.at(channel_of(slot)).config();
    return cfg.base_va + (within % per_channel_slots_) * config_.entry_bytes;
  }

  switchsim::ProgrammableSwitch* switch_;
  ChannelSet channels_;
  Config config_;

  // Ring state (all representable as P4 registers).
  std::size_t capacity_ = 0;           // total slots across stripes
  std::size_t per_channel_slots_ = 0;  // slots per stripe
  std::uint64_t head_ = 0;             // next slot to write (monotonic)
  std::uint64_t tail_ = 0;             // next slot to re-inject (monotonic)
  bool diverting_ = false;

  // Outstanding READ bookkeeping.
  struct InflightKey {
    std::size_t channel;
    roce::Psn psn;
    bool operator==(const InflightKey&) const = default;
  };
  struct InflightKeyHash {
    std::size_t operator()(const InflightKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.channel) << 32) | k.psn.raw());
    }
  };
  std::uint64_t next_read_slot_ = 0;  // next slot to request (monotonic)
  struct InflightRead {
    std::uint64_t slot = 0;
    sim::Time sent_at = 0;
    bool retransmitted = false;  // Karn: its RTT must not feed the estimator
  };
  std::unordered_map<InflightKey, InflightRead, InflightKeyHash>
      inflight_;                              // (chan, psn) -> read
  std::vector<int> inflight_per_channel_;

  // Reliable-store bookkeeping (all empty unless reliable_stores).
  struct PendingWrite {
    std::uint64_t slot = 0;
    std::vector<std::uint8_t> entry;  // kept for retransmission
    sim::Time sent_at = 0;
    bool retransmitted = false;
  };
  std::unordered_map<InflightKey, PendingWrite, InflightKeyHash>
      inflight_writes_;                       // (chan, psn) -> write
  /// Slots whose entry WRITE is not yet acknowledged (or still
  /// deferred); READs for them are gated.
  std::unordered_set<std::uint64_t> unacked_slots_;
  /// slot -> entry bytes parked while the slot's stripe is down.
  std::map<std::uint64_t, std::vector<std::uint8_t>> deferred_stores_;
  /// Duplicate NAK frames have no inflight entry to no-op against.
  DedupWindow nak_dedup_;
  /// slot -> recovered frame; an empty Packet is a *hole* (that slot's
  /// data is known lost — dead stripe or unrecovered READ) that the
  /// drain skips over.
  std::map<std::uint64_t, net::Packet> reorder_;
  sim::Time last_read_progress_ = 0;
  sim::EventId timeout_;
  /// Per-stripe adaptive RTO estimators (used when adaptive_rto.enabled).
  std::vector<AdaptiveRto> rto_;
  [[nodiscard]] sim::Time stripe_timeout(std::size_t stripe) const {
    return config_.adaptive_rto.enabled ? rto_[stripe].rto()
                                        : config_.read_timeout;
  }

  Stats stats_;
};

}  // namespace xmem::core
