// Adaptive retransmission timeout: Jacobson/Karels RTT estimation with
// exponential backoff, for the switch-side reliability extensions.
//
// The primitives seeded fixed timers (2 ms READ recovery, 100 us lookup
// deadline). Those are wrong in both directions once the fabric has
// congestion control: under DCQCN pacing the true response time stretches
// (fixed timers fire spuriously and cause retransmit storms that feed the
// very queue that is congested), and on an idle fabric the fixed values
// are orders of magnitude above the real RTT (loss recovery dawdles).
// This estimator tracks the observed RTT and derives the timeout from it:
//
//   SRTT   <- (1-1/8)*SRTT + (1/8)*sample
//   RTTVAR <- (1-1/4)*RTTVAR + (1/4)*|SRTT - sample|
//   RTO    = clamp(SRTT + 4*RTTVAR, min_rto, max_rto) * 2^backoff
//
// Karn's rule applies: the caller must not feed samples measured from
// retransmitted operations (it cannot know which transmission the
// response answers). Each timeout doubles the RTO (with a deterministic
// jitter so synchronized channels do not retransmit in lockstep); any
// accepted sample resets the backoff.
//
// Header-only and simulator-free: primitives own one per shard and feed
// it from their completion / timeout paths. Disabled configs fall back to
// the primitive's fixed timer, preserving existing behaviour bit-exactly.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace xmem::core {

struct AdaptiveRtoConfig {
  /// Master switch. Off = the owning primitive keeps its fixed timeout.
  bool enabled = false;
  /// First RTO before any sample arrives (also the restart value when
  /// the estimator is reset after a reconnect).
  sim::Time initial_rto = sim::microseconds(500);
  /// Clamp bounds for the derived RTO (before backoff).
  sim::Time min_rto = sim::microseconds(20);
  sim::Time max_rto = sim::milliseconds(8);
  /// Cap on consecutive doublings; 2^6 = 64x is past any transient the
  /// simulated fabric produces, and an unbounded exponent would overflow.
  std::uint32_t max_backoff = 6;
  /// Jitter each backed-off RTO by up to this fraction of itself (drawn
  /// from a per-instance deterministic xorshift), desynchronizing
  /// channels that timed out together. 0 disables.
  double jitter_fraction = 0.125;
  /// Seed for the jitter stream; give each shard its own so their
  /// backoff schedules diverge.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

class AdaptiveRto {
 public:
  AdaptiveRto() : AdaptiveRto(AdaptiveRtoConfig{}) {}
  explicit AdaptiveRto(AdaptiveRtoConfig config)
      : config_(config),
        state_(config.jitter_seed | 1) {}  // xorshift must not start at 0

  [[nodiscard]] const AdaptiveRtoConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] bool has_samples() const { return srtt_ >= 0; }
  [[nodiscard]] sim::Time srtt() const { return srtt_ < 0 ? 0 : srtt_; }
  [[nodiscard]] sim::Time rttvar() const { return srtt_ < 0 ? 0 : rttvar_; }
  [[nodiscard]] std::uint32_t backoff() const { return backoff_; }

  /// Current retransmission timeout, backoff and jitter applied.
  [[nodiscard]] sim::Time rto() const {
    sim::Time base = srtt_ < 0 ? config_.initial_rto
                               : std::clamp(srtt_ + 4 * rttvar_,
                                            config_.min_rto, config_.max_rto);
    base <<= std::min(backoff_, config_.max_backoff);
    return base + jitter_;
  }

  /// Feed one RTT measurement. Callers enforce Karn's rule: samples from
  /// operations that were ever retransmitted must not reach here.
  void sample(sim::Time rtt) {
    if (rtt < 0) return;
    if (srtt_ < 0) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      const sim::Time err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = rttvar_ - rttvar_ / 4 + err / 4;
      srtt_ = srtt_ - srtt_ / 8 + rtt / 8;
    }
    note_progress();
  }

  /// Collapse the backoff. Called by sample(); callers must NOT call it
  /// for responses to retransmitted operations — under Karn's rule those
  /// say nothing about whether the current RTO is adequate, and resetting
  /// on them lets an undersized RTO re-arm and storm indefinitely.
  void note_progress() {
    backoff_ = 0;
    jitter_ = 0;
  }

  /// The timer fired with no response: double the next RTO and draw a
  /// fresh jitter for it.
  void note_timeout() {
    backoff_ = std::min(backoff_ + 1, config_.max_backoff);
    draw_jitter();
  }

  /// Forget the path (reconnect / failover): history from the old server
  /// says nothing about the new one.
  void reset() {
    srtt_ = -1;
    rttvar_ = 0;
    backoff_ = 0;
    jitter_ = 0;
  }

 private:
  void draw_jitter() {
    if (config_.jitter_fraction <= 0.0) {
      jitter_ = 0;
      return;
    }
    // xorshift64: deterministic per seed, good enough to decorrelate
    // backoff schedules (this is not security randomness).
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    sim::Time base = srtt_ < 0 ? config_.initial_rto
                               : std::clamp(srtt_ + 4 * rttvar_,
                                            config_.min_rto, config_.max_rto);
    base <<= std::min(backoff_, config_.max_backoff);
    const auto span = static_cast<double>(base) * config_.jitter_fraction;
    jitter_ = static_cast<sim::Time>(
        span * (static_cast<double>(state_ >> 11) /
                static_cast<double>(1ull << 53)));
  }

  AdaptiveRtoConfig config_;
  sim::Time srtt_ = -1;  ///< negative = no sample yet
  sim::Time rttvar_ = 0;
  std::uint32_t backoff_ = 0;
  sim::Time jitter_ = 0;
  std::uint64_t state_;
};

}  // namespace xmem::core
