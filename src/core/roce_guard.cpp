#include "core/roce_guard.hpp"

#include "roce/packet.hpp"

namespace xmem::core {

RoceGuard::RoceGuard(switchsim::ProgrammableSwitch& sw) {
  sw.add_ingress_stage("roce-guard",
                       [this](switchsim::PipelineContext& ctx) { stage(ctx); });
}

void RoceGuard::stage(switchsim::PipelineContext& ctx) {
  if (!ctx.headers || !ctx.headers->is_roce_v2()) return;
  ++stats_.checked;
  if (!roce::parse_roce_packet(ctx.packet)) {
    ++stats_.corrupt_dropped;
    ctx.drop();
    return;
  }
  if (int_collector_) int_collector_->collect(ctx.packet, ctx.now);
}

void RoceGuard::register_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) {
  registry.register_counter(
      prefix + "/checked",
      [this]() { return static_cast<std::int64_t>(stats_.checked); },
      "frames");
  registry.register_counter(
      prefix + "/corrupt_dropped",
      [this]() { return static_cast<std::int64_t>(stats_.corrupt_dropped); },
      "frames");
}

}  // namespace xmem::core
