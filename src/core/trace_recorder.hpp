// Remote packet-trace recorder (§2.3).
//
// "the switch can extract fields from original packets and perform RDMA
// WRITE into certain remote memory address. This eliminates the CPU
// cycles required for capturing and parsing packets in previous
// systems." — and §7 calls a "general streaming packet trace analysis
// system" an interesting direction.
//
// This primitive appends fixed 32-byte records (timestamp, five-tuple,
// length, queue occupancy) to a log in server DRAM. Records are batched
// into one RDMA WRITE per `batch` records, which divides the per-record
// header tax exactly the way §7 suggests for counters.
//
// Record layout (32 bytes, big-endian):
//   [ 0.. 8) timestamp (ns since simulation start)
//   [ 8..12) src IPv4      [12..16) dst IPv4
//   [16..18) src port      [18..20) dst port
//   [20..21) IP protocol   [21..22) DSCP/ECN byte
//   [22..24) frame length
//   [24..28) egress-queue depth (bytes) at capture time
//   [28..32) record sequence number (low 32 bits)
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/rdma_channel.hpp"
#include "net/flow.hpp"
#include "switchsim/switch.hpp"

namespace xmem::core {

struct TraceRecord {
  std::uint64_t timestamp_ns = 0;
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;
  std::uint8_t tos = 0;
  std::uint16_t frame_len = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t sequence = 0;

  static constexpr std::size_t kBytes = 32;
  void serialize(net::ByteWriter& w) const;
  static TraceRecord parse(net::ByteReader& r);
  bool operator==(const TraceRecord&) const = default;
};

class TraceRecorderPrimitive {
 public:
  /// Which packets to capture; default: every IPv4 packet that is not
  /// RoCE (never trace your own telemetry traffic).
  using FilterFn = std::function<bool(const net::Packet&)>;

  enum class Mode {
    kRing,     // wrap and overwrite (continuous monitoring)
    kCapture,  // stop when the log is full (one-shot capture)
  };

  struct Config {
    Mode mode = Mode::kRing;
    /// Records accumulated in switch registers before one WRITE ships
    /// them; 1 = a WRITE per packet.
    std::size_t batch = 8;
    FilterFn filter;
    /// Port whose queue depth is stamped into records (-1 = none).
    int watch_queue_port = -1;
  };

  struct Stats {
    std::uint64_t records_captured = 0;
    std::uint64_t writes_sent = 0;
    std::uint64_t dropped_log_full = 0;  // kCapture mode only
  };

  TraceRecorderPrimitive(switchsim::ProgrammableSwitch& sw,
                         control::RdmaChannelConfig channel, Config config);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RdmaChannel& channel() const { return channel_; }
  [[nodiscard]] std::uint64_t log_capacity() const { return capacity_; }
  /// Records buffered in switch registers, not yet shipped.
  [[nodiscard]] std::size_t unflushed() const {
    return pending_.size() / TraceRecord::kBytes;
  }

  /// Ship any partial batch (end of a measurement window).
  void flush();

  /// Register every Stats field plus an unflushed-records gauge under
  /// `<prefix>/...`; batch WRITEs get spans on `<prefix>/chan`. Either
  /// pointer may be null.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::OpTracer* tracer,
                        const std::string& prefix);

  /// Control-plane side: decode the `n` oldest available records from a
  /// region snapshot (n capped to what was captured).
  static std::vector<TraceRecord> read_log(
      std::span<const std::uint8_t> region, std::uint64_t captured,
      std::uint64_t capacity);

 private:
  void on_ingress(switchsim::PipelineContext& ctx);
  void append(const net::Packet& packet);

  switchsim::ProgrammableSwitch* switch_;
  RdmaChannel channel_;
  Config config_;
  std::uint64_t capacity_ = 0;   // records the region can hold
  std::uint64_t cursor_ = 0;     // next record slot (monotonic)
  std::vector<std::uint8_t> pending_;  // serialized, not yet written
  std::uint64_t pending_first_slot_ = 0;
  Stats stats_;
};

}  // namespace xmem::core
