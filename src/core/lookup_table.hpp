// Remote lookup table primitive (§4).
//
// A fixed-entry-size match-action table in server DRAM, indexed by a hash
// of a packet-derived key. On a local-SRAM-cache miss the switch
// "bounces" the packet: an RDMA WRITE deposits the original packet in the
// entry's packet slot (so the switch holds no per-packet state while the
// lookup is outstanding), an immediately following RDMA READ returns the
// whole entry — {action, key-check, packet} — and the switch applies the
// action to the returned packet and forwards it. Optionally the action is
// cached in local SRAM with FIFO eviction.
//
// The §7 alternative is also implemented: kRecirculate holds the original
// packet in the pipeline (recirculating) and READs only the 16-byte
// action, saving the packet's round trip to remote memory.
//
// The table may be sharded across several memory servers ("We maintain
// the complete virtual-to-physical address mapping table on servers in a
// sharded fashion", §2.2) through a core::ChannelSet: entry index i lives
// on shard i % K at slot i / K, so capacity and lookup bandwidth scale
// with server count. When a shard is down, packets whose entry lives
// there degrade to the local-miss default action — they pass through the
// pipeline un-looked-up rather than bounce into a black hole — and a
// timeout scavenger reclaims lookups that were in flight when the server
// died (feeding the health state machine that detects the failure).
//
// Remote entry layout (entry_bytes total):
//   [ 0..16)  Action (switchsim::Action serialized)
//   [16..24)  key-check hash (written at populate time; detects index
//             collisions, which address-based remote memory cannot
//             otherwise see — §7's "no exact matching" caveat)
//   [24..28)  u32 deposited frame length
//   [28.. )   deposited frame bytes
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/channel_set.hpp"
#include "switchsim/switch.hpp"

namespace xmem::core {

class LookupTablePrimitive {
 public:
  enum class Mode {
    kBounce,       // paper's design: deposit the packet remotely
    kRecirculate,  // §7 alternative: hold the packet, fetch action only
  };

  /// Derives the lookup key from a packet; nullopt = not subject to the
  /// table (forwarded normally). Default: the five-tuple key bytes.
  using KeyFn = std::function<std::optional<std::vector<std::uint8_t>>(
      const net::Packet&)>;

  struct Config {
    Mode mode = Mode::kBounce;
    std::size_t entry_bytes = 2048;
    /// Local SRAM cache capacity in entries (0 disables caching).
    std::size_t cache_capacity = 0;
    KeyFn key_fn;  // default: five-tuple
    std::uint64_t hash_seed = 0x9e3779b97f4a7c15ULL;
    /// Outstanding lookups older than this are abandoned (their switch
    /// state reclaimed) and reported to the shard's health machinery.
    sim::Time lookup_timeout = sim::microseconds(100);
    /// Failover thresholds/probing for the channel set.
    ChannelSet::Config health;
  };

  struct Stats {
    std::uint64_t cache_hits = 0;
    std::uint64_t remote_lookups = 0;
    std::uint64_t applied = 0;          // actions applied to packets
    std::uint64_t no_entry_drops = 0;   // kNone / kDrop actions
    std::uint64_t collision_drops = 0;  // key-check mismatch
    std::uint64_t cache_inserts = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t held_packets = 0;     // recirculate-mode high-water mark
    std::uint64_t lost_responses = 0;   // lookups abandoned (timeout/failover)
    std::uint64_t oversized_drops = 0;  // packet too big for the entry slot
    std::uint64_t degraded_passthrough = 0;  // home shard down: no lookup
    std::uint64_t duplicate_responses = 0;   // stale/duplicated deliveries
  };

  // Entry layout constants.
  static constexpr std::size_t kActionOffset = 0;
  static constexpr std::size_t kKeyHashOffset = 16;
  static constexpr std::size_t kLenOffset = 24;
  static constexpr std::size_t kFrameOffset = 28;

  /// Sharded over `channels` (at least one; all regions equally sized).
  LookupTablePrimitive(switchsim::ProgrammableSwitch& sw,
                       std::vector<control::RdmaChannelConfig> channels,
                       Config config);
  /// Single-server convenience (a pool of 1).
  LookupTablePrimitive(switchsim::ProgrammableSwitch& sw,
                       control::RdmaChannelConfig channel, Config config)
      : LookupTablePrimitive(
            sw, std::vector<control::RdmaChannelConfig>{std::move(channel)},
            std::move(config)) {}

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RdmaChannel& channel(std::size_t shard = 0) const {
    return channels_.at(shard);
  }
  [[nodiscard]] const ChannelSet& channels() const { return channels_; }
  [[nodiscard]] ChannelSet& channels() { return channels_; }
  [[nodiscard]] std::size_t shard_count() const { return channels_.size(); }
  /// Total entries across all shards.
  [[nodiscard]] std::size_t table_entries() const { return n_entries_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  /// Lookups currently in flight (bounce READs + held recirc originals).
  [[nodiscard]] std::size_t outstanding() const {
    return inflight_.size() + pending_.size();
  }

  /// Register every Stats field plus outstanding-lookup gauges under
  /// `<prefix>/...`, and delegate per-shard channel + health metrics to
  /// `<prefix>/shard<i>/...`. Either pointer may be null.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::OpTracer* tracer,
                        const std::string& prefix);

  /// Swap in a rebuilt channel for `shard` after its server's RNIC was
  /// restart()ed and ChannelController::reconnect produced `config`.
  /// Lookups still in flight against the old epoch are reclaimed as
  /// lost_responses first (their responses can never arrive on the new
  /// queue pair).
  void reconnect(std::size_t shard, control::RdmaChannelConfig config);

  /// --- Control-plane population ---------------------------------------
  /// Hash `key` to its entry index (what the data plane computes).
  [[nodiscard]] static std::uint64_t index_for_key(
      std::span<const std::uint8_t> key, std::size_t n_entries,
      std::uint64_t seed);
  /// Write {action, key-check} into `key`'s slot of a remote region
  /// (performed by the control plane at initialization, via local access
  /// on the memory server). Returns the index used.
  static std::uint64_t install_entry(std::span<std::uint8_t> region,
                                     std::size_t entry_bytes,
                                     std::span<const std::uint8_t> key,
                                     const switchsim::Action& action,
                                     std::uint64_t seed);

  /// Key-check hash (a second, independent hash of the key).
  [[nodiscard]] static std::uint64_t key_check_hash(
      std::span<const std::uint8_t> key);

  /// Sharded population helper: writes {action, key-check} for `key`
  /// into whichever of `regions` (one span per shard, equal sizes) owns
  /// its index. Returns {shard, slot-within-shard}.
  static std::pair<std::size_t, std::uint64_t> install_entry_sharded(
      std::span<const std::span<std::uint8_t>> regions,
      std::size_t entry_bytes, std::span<const std::uint8_t> key,
      const switchsim::Action& action, std::uint64_t seed);

 private:
  void on_ingress(switchsim::PipelineContext& ctx);
  void handle_response(std::size_t shard, const roce::RoceMessage& msg);
  void remote_lookup(switchsim::PipelineContext& ctx,
                     std::span<const std::uint8_t> key);
  void on_health_change(std::size_t shard, ChannelSet::Health health);
  void reclaim_shard(std::size_t shard);
  void arm_timeout();
  void on_timeout();
  /// Apply `action` to `packet`; returns the egress port, or nullopt if
  /// the packet should be dropped.
  [[nodiscard]] std::optional<int> apply_action(
      const switchsim::Action& action, net::Packet& packet);
  void cache_insert(std::vector<std::uint8_t> key,
                    const switchsim::Action& action);

  switchsim::ProgrammableSwitch* switch_;
  ChannelSet channels_;
  Config config_;
  std::size_t n_entries_ = 0;         // total across shards
  std::size_t entries_per_shard_ = 0;

  // Local SRAM cache with FIFO eviction.
  struct KeyBytesHash {
    std::size_t operator()(const std::vector<std::uint8_t>& k) const noexcept {
      return std::hash<std::string_view>{}(std::string_view(
          reinterpret_cast<const char*>(k.data()), k.size()));
    }
  };
  std::unordered_map<std::vector<std::uint8_t>, switchsim::Action,
                     KeyBytesHash>
      cache_;
  std::deque<std::vector<std::uint8_t>> cache_fifo_;

  // Outstanding READs are keyed by (shard, psn): PSN spaces are
  // per-channel.
  struct ShardPsn {
    std::size_t shard;
    roce::Psn psn;
    bool operator==(const ShardPsn&) const = default;
  };
  struct ShardPsnHash {
    std::size_t operator()(const ShardPsn& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.shard) << 32) | k.psn.raw());
    }
  };
  // Bounce mode: outstanding READs and when they were posted.
  std::unordered_map<ShardPsn, sim::Time, ShardPsnHash> inflight_;
  // Recirculate mode: held originals keyed by READ key.
  struct Held {
    net::Packet packet;
    sim::Time sent_at = 0;
  };
  std::unordered_map<ShardPsn, Held, ShardPsnHash> pending_;
  sim::EventId timeout_;

  Stats stats_;
};

}  // namespace xmem::core
