// Remote lookup table primitive (§4).
//
// A fixed-entry-size match-action table in server DRAM, indexed by a hash
// of a packet-derived key. On a local-SRAM-cache miss the switch
// "bounces" the packet: an RDMA WRITE deposits the original packet in the
// entry's packet slot (so the switch holds no per-packet state while the
// lookup is outstanding), an immediately following RDMA READ returns the
// whole entry — {action, key-check, packet} — and the switch applies the
// action to the returned packet and forwards it. Optionally the action is
// cached in local SRAM (core::LookupCache, FIFO/LRU/segmented-LFU).
//
// The §7 alternative is also implemented: kRecirculate holds the original
// packet in the pipeline (recirculating) and READs only the 16-byte
// action, saving the packet's round trip to remote memory.
//
// The local SRAM cache is a core::LookupCache (see lookup_cache.hpp):
// bounded, with pluggable FIFO/LRU/segmented-LFU eviction, negative
// entries for absent keys, and write-through invalidation
// (invalidate_cached()) for control-plane updates. Entries are tagged
// with the {shard, channel epoch} they were filled from; a hit whose
// epoch no longer matches the shard's (the server was reconnected, its
// memory possibly repopulated) is refetched instead of served. While a
// shard is *down* its epoch is unchanged, so the cache keeps serving
// hits through the outage (Config::degraded_cache selects that or a
// full bypass) and only misses degrade to passthrough.
//
// The table may be sharded across several memory servers ("We maintain
// the complete virtual-to-physical address mapping table on servers in a
// sharded fashion", §2.2) through a core::ChannelSet: entry index i lives
// on shard i % K at slot i / K, so capacity and lookup bandwidth scale
// with server count. When a shard is down, packets whose entry lives
// there degrade to the local-miss default action — they pass through the
// pipeline un-looked-up rather than bounce into a black hole — and a
// timeout scavenger reclaims lookups that were in flight when the server
// died (feeding the health state machine that detects the failure).
//
// Remote entry layout (entry_bytes total):
//   [ 0..16)  Action (switchsim::Action serialized)
//   [16..24)  key-check hash (written at populate time; detects index
//             collisions, which address-based remote memory cannot
//             otherwise see — §7's "no exact matching" caveat)
//   [24..28)  u32 deposited frame length
//   [28.. )   deposited frame bytes
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/adaptive_rto.hpp"
#include "core/channel_set.hpp"
#include "core/lookup_cache.hpp"
#include "switchsim/switch.hpp"

namespace xmem::core {

class LookupTablePrimitive {
 public:
  enum class Mode {
    kBounce,       // paper's design: deposit the packet remotely
    kRecirculate,  // §7 alternative: hold the packet, fetch action only
  };

  /// Derives the lookup key from a packet; nullopt = not subject to the
  /// table (forwarded normally). Default: the five-tuple key bytes.
  using KeyFn = std::function<std::optional<std::vector<std::uint8_t>>(
      const net::Packet&)>;

  /// What the cache does for packets whose home shard is down.
  enum class DegradedCacheMode : std::uint8_t {
    /// Serve local copies through the outage (their epoch is unchanged
    /// until a reconnect, so they are as fresh as the dead server's
    /// memory); only misses degrade to passthrough. The default.
    kServeHits,
    /// Skip the cache entirely: all traffic for the dead shard takes the
    /// degraded passthrough path, hits included. For deployments where
    /// an outage implies the remote entries are being rewritten.
    kBypass,
  };

  struct Config {
    Mode mode = Mode::kBounce;
    std::size_t entry_bytes = 2048;
    /// Local SRAM cache capacity in entries (0 disables caching).
    std::size_t cache_capacity = 0;
    /// Eviction policy. nullopt resolves the XMEM_CACHE_POLICY
    /// environment override (the CI cache-policy matrix) and falls back
    /// to LRU; an explicit value always wins.
    std::optional<LookupCache::Policy> cache_policy;
    /// Remember absent-key READ verdicts locally for this long, so a
    /// stream of misses on the same dead key stops re-issuing remote
    /// READs. 0 disables negative caching.
    sim::Time negative_ttl = 0;
    /// kLfu only: protected-segment share of cache capacity.
    double lfu_protected_fraction = 0.8;
    DegradedCacheMode degraded_cache = DegradedCacheMode::kServeHits;
    KeyFn key_fn;  // default: five-tuple
    std::uint64_t hash_seed = 0x9e3779b97f4a7c15ULL;
    /// Outstanding lookups older than this are abandoned (their switch
    /// state reclaimed) and reported to the shard's health machinery.
    sim::Time lookup_timeout = sim::microseconds(100);
    /// Adaptive deadline: when enabled, each shard's abandonment
    /// deadline tracks its measured lookup RTT and backs off across
    /// consecutive expiry rounds — under DCQCN pacing the true response
    /// time stretches, and a fixed deadline would abandon (and re-issue)
    /// lookups that are merely paced, feeding the congestion. Disabled
    /// keeps the fixed lookup_timeout.
    AdaptiveRtoConfig adaptive_rto;
    /// Failover thresholds/probing for the channel set.
    ChannelSet::Config health;
  };

  struct Stats {
    std::uint64_t cache_hits = 0;
    std::uint64_t remote_lookups = 0;
    std::uint64_t applied = 0;          // actions applied to packets
    std::uint64_t no_entry_drops = 0;   // kNone / kDrop actions
    std::uint64_t collision_drops = 0;  // key-check mismatch
    std::uint64_t cache_inserts = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t held_packets = 0;     // recirculate-mode high-water mark
    std::uint64_t lost_responses = 0;   // lookups abandoned (timeout/failover)
    std::uint64_t oversized_drops = 0;  // packet too big for the entry slot
    std::uint64_t degraded_passthrough = 0;  // home shard down: no lookup
    std::uint64_t duplicate_responses = 0;   // stale/duplicated deliveries
    std::uint64_t negative_cache_drops = 0;  // absent-key verdict served locally
    std::uint64_t cache_hits_while_down = 0; // hits served during an outage
    std::uint64_t cache_stale_refetches = 0; // epoch-mismatch entries refetched
    std::uint64_t degraded_bypass = 0;       // kBypass: cache skipped, shard down
  };

  // Entry layout constants.
  static constexpr std::size_t kActionOffset = 0;
  static constexpr std::size_t kKeyHashOffset = 16;
  static constexpr std::size_t kLenOffset = 24;
  static constexpr std::size_t kFrameOffset = 28;

  /// Sharded over `channels` (at least one; all regions equally sized).
  LookupTablePrimitive(switchsim::ProgrammableSwitch& sw,
                       std::vector<control::RdmaChannelConfig> channels,
                       Config config);
  /// Single-server convenience (a pool of 1).
  LookupTablePrimitive(switchsim::ProgrammableSwitch& sw,
                       control::RdmaChannelConfig channel, Config config)
      : LookupTablePrimitive(
            sw, std::vector<control::RdmaChannelConfig>{std::move(channel)},
            std::move(config)) {}

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RdmaChannel& channel(std::size_t shard = 0) const {
    return channels_.at(shard);
  }
  [[nodiscard]] const ChannelSet& channels() const { return channels_; }
  [[nodiscard]] ChannelSet& channels() { return channels_; }
  [[nodiscard]] std::size_t shard_count() const { return channels_.size(); }
  /// The shard's RTT estimator (meaningful only with adaptive_rto on).
  [[nodiscard]] const AdaptiveRto& rto(std::size_t shard) const {
    return rto_[shard];
  }
  /// Total entries across all shards.
  [[nodiscard]] std::size_t table_entries() const { return n_entries_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  /// The local SRAM cache (policy, occupancy, its own Stats).
  [[nodiscard]] const LookupCache& cache() const { return cache_; }
  /// Lookups currently in flight (bounce READs + held recirc originals).
  [[nodiscard]] std::size_t outstanding() const {
    return inflight_.size() + pending_.size();
  }

  /// Register every Stats field plus outstanding-lookup gauges under
  /// `<prefix>/...`, and delegate per-shard channel + health metrics to
  /// `<prefix>/shard<i>/...`. Either pointer may be null.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::OpTracer* tracer,
                        const std::string& prefix);

  /// Swap in a rebuilt channel for `shard` after its server's RNIC was
  /// restart()ed and ChannelController::reconnect produced `config`.
  /// Lookups still in flight against the old epoch are reclaimed as
  /// lost_responses first (their responses can never arrive on the new
  /// queue pair). Bumps the shard's channel epoch, so cached entries
  /// filled before the reconnect refetch lazily on their next hit.
  void reconnect(std::size_t shard, control::RdmaChannelConfig config);

  /// Write-through invalidation hook: the control plane rewrote (or
  /// removed) `key`'s remote entry — drop any local copy so the next
  /// packet refetches the new value. True if a copy was dropped.
  bool invalidate_cached(std::span<const std::uint8_t> key);

  /// --- Control-plane population ---------------------------------------
  /// Hash `key` to its entry index (what the data plane computes).
  [[nodiscard]] static std::uint64_t index_for_key(
      std::span<const std::uint8_t> key, std::size_t n_entries,
      std::uint64_t seed);
  /// Write {action, key-check} into `key`'s slot of a remote region
  /// (performed by the control plane at initialization, via local access
  /// on the memory server). Returns the index used.
  static std::uint64_t install_entry(std::span<std::uint8_t> region,
                                     std::size_t entry_bytes,
                                     std::span<const std::uint8_t> key,
                                     const switchsim::Action& action,
                                     std::uint64_t seed);

  /// Key-check hash (a second, independent hash of the key).
  [[nodiscard]] static std::uint64_t key_check_hash(
      std::span<const std::uint8_t> key);

  /// Sharded population helper: writes {action, key-check} for `key`
  /// into whichever of `regions` (one span per shard, equal sizes) owns
  /// its index. Returns {shard, slot-within-shard}.
  static std::pair<std::size_t, std::uint64_t> install_entry_sharded(
      std::span<const std::span<std::uint8_t>> regions,
      std::size_t entry_bytes, std::span<const std::uint8_t> key,
      const switchsim::Action& action, std::uint64_t seed);

 private:
  void on_ingress(switchsim::PipelineContext& ctx);
  void handle_response(std::size_t shard, const roce::RoceMessage& msg);
  void remote_lookup(switchsim::PipelineContext& ctx, std::uint64_t idx);
  void on_health_change(std::size_t shard, ChannelSet::Health health);
  void reclaim_shard(std::size_t shard);
  void arm_timeout();
  void on_timeout();
  /// Apply `action` to `packet`; returns the egress port, or nullopt if
  /// the packet should be dropped.
  [[nodiscard]] std::optional<int> apply_action(
      const switchsim::Action& action, net::Packet& packet);
  /// Fill the cache from a remote verdict (positive or "no entry"),
  /// tagged with the fill shard's current channel epoch.
  void cache_store(const std::vector<std::uint8_t>& key,
                   const switchsim::Action& action, std::size_t shard);
  void cache_store_negative(const std::vector<std::uint8_t>& key,
                            std::size_t shard);
  /// Mirror the cache's hit/insert/eviction totals into Stats, so the
  /// legacy counters (and their telemetry registrations) stay truthful.
  void sync_cache_stats();

  switchsim::ProgrammableSwitch* switch_;
  ChannelSet channels_;
  Config config_;
  LookupCache cache_;
  std::size_t n_entries_ = 0;         // total across shards
  std::size_t entries_per_shard_ = 0;

  // Outstanding READs are keyed by (shard, psn): PSN spaces are
  // per-channel.
  struct ShardPsn {
    std::size_t shard;
    roce::Psn psn;
    bool operator==(const ShardPsn&) const = default;
  };
  struct ShardPsnHash {
    std::size_t operator()(const ShardPsn& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.shard) << 32) | k.psn.raw());
    }
  };
  // Bounce mode: outstanding READs and when they were posted.
  std::unordered_map<ShardPsn, sim::Time, ShardPsnHash> inflight_;
  // Recirculate mode: held originals keyed by READ key.
  struct Held {
    net::Packet packet;
    sim::Time sent_at = 0;
  };
  std::unordered_map<ShardPsn, Held, ShardPsnHash> pending_;
  sim::EventId timeout_;
  /// Per-shard adaptive deadline estimators (used when
  /// adaptive_rto.enabled).
  std::vector<AdaptiveRto> rto_;
  [[nodiscard]] sim::Time shard_timeout(std::size_t shard) const {
    return config_.adaptive_rto.enabled ? rto_[shard].rto()
                                        : config_.lookup_timeout;
  }

  Stats stats_;
};

}  // namespace xmem::core
