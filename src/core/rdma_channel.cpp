#include "core/rdma_channel.hpp"

#include <algorithm>
#include <cassert>

namespace xmem::core {

using roce::Opcode;
using roce::RoceMessage;

RdmaChannel::RdmaChannel(switchsim::ProgrammableSwitch& sw,
                         control::RdmaChannelConfig config)
    : switch_(&sw), config_(std::move(config)),
      next_psn_(config_.initial_psn) {
  assert(config_.switch_port >= 0 && "channel has no egress port");
}

RdmaChannel::~RdmaChannel() {
  drain_event_.cancel();
  alpha_event_.cancel();
  rate_event_.cancel();
}

void RdmaChannel::enable_congestion_control(DcqcnConfig config) {
  cc_.emplace(config);
}

void RdmaChannel::on_cnp() {
  ++stats_.cnp_rx;
  if (!cc_) return;
  const bool was_recovering = cc_->in_recovery();
  cc_->on_cnp();
  if (!was_recovering) {
    // First CNP of this congestion episode: pacing starts from now, not
    // from a stale clock left over by the previous episode.
    next_send_at_ = std::max(next_send_at_, switch_->simulator().now());
    arm_cc_timers();
  }
}

void RdmaChannel::arm_cc_timers() {
  auto& sim = switch_->simulator();
  if (!alpha_event_.pending()) {
    alpha_event_ =
        sim.schedule_in(cc_->config().alpha_timer, [this] { on_alpha_tick(); });
  }
  if (!rate_event_.pending()) {
    rate_event_ =
        sim.schedule_in(cc_->config().rate_timer, [this] { on_rate_tick(); });
  }
}

void RdmaChannel::on_alpha_tick() {
  cc_->on_alpha_timer();
  // Keep decaying after recovery ends so the next episode starts from a
  // faded congestion estimate; quiesce once alpha is negligible.
  if (cc_->in_recovery() || cc_->alpha() > 1e-3) {
    alpha_event_ = switch_->simulator().schedule_in(
        cc_->config().alpha_timer, [this] { on_alpha_tick(); });
  }
}

void RdmaChannel::on_rate_tick() {
  cc_->on_rate_timer();
  if (cc_->in_recovery()) {
    rate_event_ = switch_->simulator().schedule_in(
        cc_->config().rate_timer, [this] { on_rate_tick(); });
  }
  if (!paced_.empty() && !drain_event_.pending()) {
    // A rate step may have pulled next_send_at_ into the past relative
    // to the queued backlog's old schedule; re-arm the drain.
    drain_event_ = switch_->simulator().schedule_at(
        std::max(next_send_at_, switch_->simulator().now()),
        [this] { drain_paced(); });
  }
}

void RdmaChannel::attach_telemetry(telemetry::MetricsRegistry* registry,
                                   telemetry::OpTracer* tracer,
                                   const std::string& prefix) {
  if (registry != nullptr) {
    registry->register_counter(
        prefix + "/writes_sent",
        [this]() { return static_cast<std::int64_t>(stats_.writes_sent); },
        "ops");
    registry->register_counter(
        prefix + "/reads_sent",
        [this]() { return static_cast<std::int64_t>(stats_.reads_sent); },
        "ops");
    registry->register_counter(
        prefix + "/atomics_sent",
        [this]() { return static_cast<std::int64_t>(stats_.atomics_sent); },
        "ops");
    registry->register_counter(
        prefix + "/request_bytes", [this]() { return stats_.request_bytes; },
        "bytes");
    registry->register_counter(
        prefix + "/payload_bytes", [this]() { return stats_.payload_bytes; },
        "bytes");
    registry->register_counter(
        prefix + "/cnp_rx",
        [this]() { return static_cast<std::int64_t>(stats_.cnp_rx); }, "ops");
    registry->register_counter(
        prefix + "/paced_deferrals",
        [this]() { return static_cast<std::int64_t>(stats_.paced_deferrals); },
        "ops");
    // Allowed DCQCN rate; 0 means uncapped (congestion control is off).
    registry->register_gauge(
        prefix + "/current_rate_gbps",
        [this]() { return cc_ ? sim::to_gbps(cc_->rate()) : 0.0; }, "Gbps");
  }
  if (tracer != nullptr) {
    tracer_ = tracer;
    track_ = tracer_->track(prefix);
  }
}

void RdmaChannel::trace_begin(std::string_view verb, roce::Psn psn,
                              std::uint64_t bytes) {
  if (tracer_ != nullptr) tracer_->begin_op(track_, verb, psn, bytes);
}

void RdmaChannel::trace_complete(roce::Psn psn, std::string_view status) {
  if (tracer_ != nullptr) tracer_->end_op(track_, psn, status);
}

void RdmaChannel::trace_retransmit(roce::Psn psn) {
  if (tracer_ != nullptr) tracer_->note_retransmit(track_, psn);
}

void RdmaChannel::trace_annotate(roce::Psn psn, std::string_view key,
                                 std::string_view value) {
  if (tracer_ != nullptr) tracer_->annotate(track_, psn, key, value);
}

void RdmaChannel::inject(RoceMessage msg) {
  if (!cc_ || !cc_->in_recovery()) {
    // Uncongested (or CC off): wire-speed injection, byte-identical to
    // the pre-pacing code path.
    send_now(std::move(msg));
    return;
  }
  const sim::Time now = switch_->simulator().now();
  if (paced_.empty() && now >= next_send_at_) {
    send_now(std::move(msg));
    return;
  }
  ++stats_.paced_deferrals;
  paced_.push_back(std::move(msg));
  if (!drain_event_.pending()) {
    drain_event_ = switch_->simulator().schedule_at(
        std::max(next_send_at_, now), [this] { drain_paced(); });
  }
}

void RdmaChannel::send_now(RoceMessage msg) {
  net::Packet frame =
      roce::build_roce_packet(config_.local, config_.remote, std::move(msg));
  const auto bytes = static_cast<std::int64_t>(frame.size());
  stats_.request_bytes += bytes;
  if (cc_ && cc_->in_recovery()) {
    // Charge the pacer: the next frame may leave once this one has
    // serialized at the current allowed rate.
    next_send_at_ = std::max(next_send_at_, switch_->simulator().now()) +
                    sim::transmission_time(bytes, cc_->rate());
  }
  switch_->inject(std::move(frame), config_.switch_port);
  if (cc_) cc_->on_bytes_sent(static_cast<std::uint64_t>(bytes));
}

void RdmaChannel::drain_paced() {
  const sim::Time now = switch_->simulator().now();
  // Send every frame whose pace slot has arrived; a byte-counter round
  // inside send_now() can end recovery mid-drain, after which the rest
  // of the backlog flushes at wire speed.
  while (!paced_.empty() && (now >= next_send_at_ || !cc_->in_recovery())) {
    RoceMessage msg = std::move(paced_.front());
    paced_.pop_front();
    send_now(std::move(msg));
  }
  if (!paced_.empty()) {
    drain_event_ = switch_->simulator().schedule_at(next_send_at_,
                                                    [this] { drain_paced(); });
  }
}

roce::Psn RdmaChannel::post_write(std::uint64_t va,
                                  std::span<const std::uint8_t> payload,
                                  bool ack_req) {
  const roce::Psn first_psn = next_psn_;
  const std::size_t mtu = config_.path_mtu;
  const std::size_t segments =
      payload.empty() ? 1 : (payload.size() + mtu - 1) / mtu;
  trace_begin("WRITE", first_psn, payload.size());

  for (std::size_t i = 0; i < segments; ++i) {
    RoceMessage msg;
    msg.bth.dest_qp = config_.remote_qpn;
    msg.bth.psn = roce::psn_add(first_psn, static_cast<std::uint32_t>(i));
    const bool first = i == 0;
    const bool last = i + 1 == segments;
    if (segments == 1) {
      msg.bth.opcode = Opcode::kRdmaWriteOnly;
    } else if (first) {
      msg.bth.opcode = Opcode::kRdmaWriteFirst;
    } else if (last) {
      msg.bth.opcode = Opcode::kRdmaWriteLast;
    } else {
      msg.bth.opcode = Opcode::kRdmaWriteMiddle;
    }
    msg.bth.ack_req = ack_req && last;
    if (first) {
      msg.reth = roce::Reth{va, config_.rkey,
                            static_cast<std::uint32_t>(payload.size())};
    }
    const std::size_t offset = i * mtu;
    const std::size_t chunk = std::min(mtu, payload.size() - offset);
    msg.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                       payload.begin() +
                           static_cast<std::ptrdiff_t>(offset + chunk));
    inject(std::move(msg));
  }

  next_psn_ = roce::psn_add(first_psn, static_cast<std::uint32_t>(segments));
  ++stats_.writes_sent;
  stats_.payload_bytes += static_cast<std::int64_t>(payload.size());
  // Unacknowledged WRITEs get no response: their span closes at injection
  // ("posted"), so fire-and-forget stores still appear on the timeline.
  if (!ack_req) trace_complete(first_psn, "posted");
  return first_psn;
}

roce::Psn RdmaChannel::post_read(std::uint64_t va, std::uint32_t len) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaReadRequest;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.reth = roce::Reth{va, config_.rkey, len};
  const roce::Psn psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, read_segments(len));
  ++stats_.reads_sent;
  trace_begin("READ", psn, len);
  inject(std::move(msg));
  return psn;
}

void RdmaChannel::reconfigure(control::RdmaChannelConfig config) {
  assert(config.switch_port >= 0 && "channel has no egress port");
  config_ = std::move(config);
  next_psn_ = config_.initial_psn;
}

void RdmaChannel::repost_write(std::uint64_t va,
                               std::span<const std::uint8_t> payload,
                               roce::Psn psn, bool ack_req) {
  assert(payload.size() <= config_.path_mtu &&
         "repost_write: payload exceeds one MTU");
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaWriteOnly;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.bth.ack_req = ack_req;
  msg.reth = roce::Reth{va, config_.rkey,
                        static_cast<std::uint32_t>(payload.size())};
  msg.payload.assign(payload.begin(), payload.end());
  trace_retransmit(psn);
  inject(std::move(msg));
}

void RdmaChannel::repost_read(std::uint64_t va, std::uint32_t len,
                              roce::Psn psn) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaReadRequest;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.reth = roce::Reth{va, config_.rkey, len};
  trace_retransmit(psn);
  inject(std::move(msg));
}

roce::Psn RdmaChannel::post_fetch_add(std::uint64_t va, std::uint64_t add) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kFetchAdd;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, add, 0};
  const roce::Psn psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, 1);
  ++stats_.atomics_sent;
  trace_begin("FETCH_ADD", psn, 8);
  inject(std::move(msg));
  return psn;
}

roce::Psn RdmaChannel::post_compare_swap(std::uint64_t va,
                                         std::uint64_t compare,
                                         std::uint64_t swap) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kCompareSwap;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, swap, compare};
  const roce::Psn psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, 1);
  ++stats_.atomics_sent;
  trace_begin("CMP_SWAP", psn, 8);
  inject(std::move(msg));
  return psn;
}

void RdmaChannel::repost_fetch_add(std::uint64_t va, std::uint64_t add,
                                   roce::Psn psn) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kFetchAdd;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, add, 0};
  trace_retransmit(psn);
  inject(std::move(msg));
}

}  // namespace xmem::core
