#include "core/rdma_channel.hpp"

#include <algorithm>
#include <cassert>

namespace xmem::core {

using roce::Opcode;
using roce::RoceMessage;

RdmaChannel::RdmaChannel(switchsim::ProgrammableSwitch& sw,
                         control::RdmaChannelConfig config)
    : switch_(&sw), config_(std::move(config)),
      next_psn_(config_.initial_psn) {
  assert(config_.switch_port >= 0 && "channel has no egress port");
}

void RdmaChannel::attach_telemetry(telemetry::MetricsRegistry* registry,
                                   telemetry::OpTracer* tracer,
                                   const std::string& prefix) {
  if (registry != nullptr) {
    registry->register_counter(
        prefix + "/writes_sent",
        [this]() { return static_cast<std::int64_t>(stats_.writes_sent); },
        "ops");
    registry->register_counter(
        prefix + "/reads_sent",
        [this]() { return static_cast<std::int64_t>(stats_.reads_sent); },
        "ops");
    registry->register_counter(
        prefix + "/atomics_sent",
        [this]() { return static_cast<std::int64_t>(stats_.atomics_sent); },
        "ops");
    registry->register_counter(
        prefix + "/request_bytes", [this]() { return stats_.request_bytes; },
        "bytes");
    registry->register_counter(
        prefix + "/payload_bytes", [this]() { return stats_.payload_bytes; },
        "bytes");
  }
  if (tracer != nullptr) {
    tracer_ = tracer;
    track_ = tracer_->track(prefix);
  }
}

void RdmaChannel::trace_begin(std::string_view verb, roce::Psn psn,
                              std::uint64_t bytes) {
  if (tracer_ != nullptr) tracer_->begin_op(track_, verb, psn, bytes);
}

void RdmaChannel::trace_complete(roce::Psn psn, std::string_view status) {
  if (tracer_ != nullptr) tracer_->end_op(track_, psn, status);
}

void RdmaChannel::trace_retransmit(roce::Psn psn) {
  if (tracer_ != nullptr) tracer_->note_retransmit(track_, psn);
}

void RdmaChannel::trace_annotate(roce::Psn psn, std::string_view key,
                                 std::string_view value) {
  if (tracer_ != nullptr) tracer_->annotate(track_, psn, key, value);
}

void RdmaChannel::inject(RoceMessage msg) {
  net::Packet frame =
      roce::build_roce_packet(config_.local, config_.remote, std::move(msg));
  stats_.request_bytes += static_cast<std::int64_t>(frame.size());
  switch_->inject(std::move(frame), config_.switch_port);
}

roce::Psn RdmaChannel::post_write(std::uint64_t va,
                                  std::span<const std::uint8_t> payload,
                                  bool ack_req) {
  const roce::Psn first_psn = next_psn_;
  const std::size_t mtu = config_.path_mtu;
  const std::size_t segments =
      payload.empty() ? 1 : (payload.size() + mtu - 1) / mtu;
  trace_begin("WRITE", first_psn, payload.size());

  for (std::size_t i = 0; i < segments; ++i) {
    RoceMessage msg;
    msg.bth.dest_qp = config_.remote_qpn;
    msg.bth.psn = roce::psn_add(first_psn, static_cast<std::uint32_t>(i));
    const bool first = i == 0;
    const bool last = i + 1 == segments;
    if (segments == 1) {
      msg.bth.opcode = Opcode::kRdmaWriteOnly;
    } else if (first) {
      msg.bth.opcode = Opcode::kRdmaWriteFirst;
    } else if (last) {
      msg.bth.opcode = Opcode::kRdmaWriteLast;
    } else {
      msg.bth.opcode = Opcode::kRdmaWriteMiddle;
    }
    msg.bth.ack_req = ack_req && last;
    if (first) {
      msg.reth = roce::Reth{va, config_.rkey,
                            static_cast<std::uint32_t>(payload.size())};
    }
    const std::size_t offset = i * mtu;
    const std::size_t chunk = std::min(mtu, payload.size() - offset);
    msg.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                       payload.begin() +
                           static_cast<std::ptrdiff_t>(offset + chunk));
    inject(std::move(msg));
  }

  next_psn_ = roce::psn_add(first_psn, static_cast<std::uint32_t>(segments));
  ++stats_.writes_sent;
  stats_.payload_bytes += static_cast<std::int64_t>(payload.size());
  // Unacknowledged WRITEs get no response: their span closes at injection
  // ("posted"), so fire-and-forget stores still appear on the timeline.
  if (!ack_req) trace_complete(first_psn, "posted");
  return first_psn;
}

roce::Psn RdmaChannel::post_read(std::uint64_t va, std::uint32_t len) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaReadRequest;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.reth = roce::Reth{va, config_.rkey, len};
  const roce::Psn psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, read_segments(len));
  ++stats_.reads_sent;
  trace_begin("READ", psn, len);
  inject(std::move(msg));
  return psn;
}

void RdmaChannel::reconfigure(control::RdmaChannelConfig config) {
  assert(config.switch_port >= 0 && "channel has no egress port");
  config_ = std::move(config);
  next_psn_ = config_.initial_psn;
}

void RdmaChannel::repost_write(std::uint64_t va,
                               std::span<const std::uint8_t> payload,
                               roce::Psn psn, bool ack_req) {
  assert(payload.size() <= config_.path_mtu &&
         "repost_write: payload exceeds one MTU");
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaWriteOnly;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.bth.ack_req = ack_req;
  msg.reth = roce::Reth{va, config_.rkey,
                        static_cast<std::uint32_t>(payload.size())};
  msg.payload.assign(payload.begin(), payload.end());
  trace_retransmit(psn);
  inject(std::move(msg));
}

void RdmaChannel::repost_read(std::uint64_t va, std::uint32_t len,
                              roce::Psn psn) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaReadRequest;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.reth = roce::Reth{va, config_.rkey, len};
  trace_retransmit(psn);
  inject(std::move(msg));
}

roce::Psn RdmaChannel::post_fetch_add(std::uint64_t va, std::uint64_t add) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kFetchAdd;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, add, 0};
  const roce::Psn psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, 1);
  ++stats_.atomics_sent;
  trace_begin("FETCH_ADD", psn, 8);
  inject(std::move(msg));
  return psn;
}

roce::Psn RdmaChannel::post_compare_swap(std::uint64_t va,
                                         std::uint64_t compare,
                                         std::uint64_t swap) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kCompareSwap;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, swap, compare};
  const roce::Psn psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, 1);
  ++stats_.atomics_sent;
  trace_begin("CMP_SWAP", psn, 8);
  inject(std::move(msg));
  return psn;
}

void RdmaChannel::repost_fetch_add(std::uint64_t va, std::uint64_t add,
                                   roce::Psn psn) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kFetchAdd;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, add, 0};
  trace_retransmit(psn);
  inject(std::move(msg));
}

}  // namespace xmem::core
