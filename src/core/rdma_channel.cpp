#include "core/rdma_channel.hpp"

#include <algorithm>
#include <cassert>

namespace xmem::core {

using roce::Opcode;
using roce::RoceMessage;

RdmaChannel::RdmaChannel(switchsim::ProgrammableSwitch& sw,
                         control::RdmaChannelConfig config)
    : switch_(&sw), config_(std::move(config)),
      next_psn_(config_.initial_psn & roce::kPsnMask) {
  assert(config_.switch_port >= 0 && "channel has no egress port");
}

void RdmaChannel::inject(RoceMessage msg) {
  net::Packet frame =
      roce::build_roce_packet(config_.local, config_.remote, std::move(msg));
  stats_.request_bytes += static_cast<std::int64_t>(frame.size());
  switch_->inject(std::move(frame), config_.switch_port);
}

std::uint32_t RdmaChannel::post_write(std::uint64_t va,
                                      std::span<const std::uint8_t> payload,
                                      bool ack_req) {
  const std::uint32_t first_psn = next_psn_;
  const std::size_t mtu = config_.path_mtu;
  const std::size_t segments =
      payload.empty() ? 1 : (payload.size() + mtu - 1) / mtu;

  for (std::size_t i = 0; i < segments; ++i) {
    RoceMessage msg;
    msg.bth.dest_qp = config_.remote_qpn;
    msg.bth.psn = roce::psn_add(first_psn, static_cast<std::uint32_t>(i));
    const bool first = i == 0;
    const bool last = i + 1 == segments;
    if (segments == 1) {
      msg.bth.opcode = Opcode::kRdmaWriteOnly;
    } else if (first) {
      msg.bth.opcode = Opcode::kRdmaWriteFirst;
    } else if (last) {
      msg.bth.opcode = Opcode::kRdmaWriteLast;
    } else {
      msg.bth.opcode = Opcode::kRdmaWriteMiddle;
    }
    msg.bth.ack_req = ack_req && last;
    if (first) {
      msg.reth = roce::Reth{va, config_.rkey,
                            static_cast<std::uint32_t>(payload.size())};
    }
    const std::size_t offset = i * mtu;
    const std::size_t chunk = std::min(mtu, payload.size() - offset);
    msg.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                       payload.begin() +
                           static_cast<std::ptrdiff_t>(offset + chunk));
    inject(std::move(msg));
  }

  next_psn_ = roce::psn_add(first_psn, static_cast<std::uint32_t>(segments));
  ++stats_.writes_sent;
  stats_.payload_bytes += static_cast<std::int64_t>(payload.size());
  return first_psn;
}

std::uint32_t RdmaChannel::post_read(std::uint64_t va, std::uint32_t len) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaReadRequest;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.reth = roce::Reth{va, config_.rkey, len};
  const std::uint32_t psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, read_segments(len));
  ++stats_.reads_sent;
  inject(std::move(msg));
  return psn;
}

void RdmaChannel::repost_read(std::uint64_t va, std::uint32_t len,
                              std::uint32_t psn) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kRdmaReadRequest;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.reth = roce::Reth{va, config_.rkey, len};
  inject(std::move(msg));
}

std::uint32_t RdmaChannel::post_fetch_add(std::uint64_t va,
                                          std::uint64_t add) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kFetchAdd;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, add, 0};
  const std::uint32_t psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, 1);
  ++stats_.atomics_sent;
  inject(std::move(msg));
  return psn;
}

std::uint32_t RdmaChannel::post_compare_swap(std::uint64_t va,
                                             std::uint64_t compare,
                                             std::uint64_t swap) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kCompareSwap;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = next_psn_;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, swap, compare};
  const std::uint32_t psn = next_psn_;
  next_psn_ = roce::psn_add(next_psn_, 1);
  ++stats_.atomics_sent;
  inject(std::move(msg));
  return psn;
}

void RdmaChannel::repost_fetch_add(std::uint64_t va, std::uint64_t add,
                                   std::uint32_t psn) {
  RoceMessage msg;
  msg.bth.opcode = Opcode::kFetchAdd;
  msg.bth.dest_qp = config_.remote_qpn;
  msg.bth.psn = psn;
  msg.atomic_eth = roce::AtomicEth{va, config_.rkey, add, 0};
  inject(std::move(msg));
}

}  // namespace xmem::core
