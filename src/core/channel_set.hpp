// ChannelSet: the sharding layer between a primitive and its memory
// servers. It owns one RdmaChannel per server and adds the two things a
// multi-server deployment needs on top of raw channels:
//
//   Routing.  Every operation carries a stable 64-bit key (the lookup
//   table's entry index, the state store's counter index, the packet
//   buffer's ring slot). Key k's *home shard* is k % N, forever — the
//   placement a control plane used when it populated the remote regions.
//   Failover never rehashes: a down shard is *excluded*, not rebalanced,
//   so surviving shards keep serving exactly the keys they always owned
//   and a recovered shard's data is still where the router expects it.
//
//   Health.  Each shard runs a tiny state machine (kUp <-> kDown) driven
//   by the owning primitive's observations: consecutive response
//   timeouts or NAKs past a threshold mark the shard down; any response
//   from it marks it up. While a shard is down the set probes it with
//   periodic one-slot READs so recovery is detected even though the
//   router sends it no real traffic. The primitive reacts to route()
//   returning nullopt with its own degraded mode (lookup table: local
//   miss; state store: local accumulation; packet buffer: drop-tail on
//   the dead stripe).
//
// All of this is register-and-timer machinery a real switch control
// plane could drive; the data-plane part of routing is one modulo.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/rdma_channel.hpp"
#include "switchsim/switch.hpp"
#include "telemetry/flight_recorder.hpp"

namespace xmem::core {

class ChannelSet {
 public:
  enum class Health : std::uint8_t { kUp, kDown };

  struct Config {
    /// Consecutive timeouts on one shard before it is marked down.
    int down_after_timeouts = 3;
    /// Consecutive NAKs before down (responder reachable but broken).
    int down_after_naks = 8;
    /// While down, probe the shard with a small READ at this interval;
    /// the probe's response flips it back up. 0 disables probing
    /// (recovery then needs out-of-band note_ok()).
    sim::Time probe_interval = sim::milliseconds(1);
    /// Bytes fetched by each probe READ (from the region base).
    std::uint32_t probe_bytes = 8;
    /// Unanswered probes to a dead server accumulate in a tracking set;
    /// past this size the set is cleared (an extremely late response
    /// then reads as stale instead of as a probe — the next probe
    /// recovers). Chaos plans shrink this to exercise the cap.
    std::size_t max_tracked_probe_psns = 1024;
  };

  struct ShardStats {
    std::uint64_t ops_routed = 0;        // route() hits while up
    std::uint64_t routed_while_down = 0; // route() refusals
    std::uint64_t timeouts = 0;
    std::uint64_t naks = 0;
    std::uint64_t down_transitions = 0;
    std::uint64_t up_transitions = 0;
    std::uint64_t probes_sent = 0;
  };

  /// Invoked after every health transition (state already updated), so
  /// the owning primitive can drain deferred work on kUp or reclaim
  /// in-flight state on kDown.
  using HealthFn = std::function<void(std::size_t shard, Health health)>;

  /// One channel per config, in order; shard i talks to configs[i].
  ChannelSet(switchsim::ProgrammableSwitch& sw,
             std::vector<control::RdmaChannelConfig> configs, Config config);
  ChannelSet(switchsim::ProgrammableSwitch& sw,
             std::vector<control::RdmaChannelConfig> configs);

  [[nodiscard]] std::size_t size() const { return shards_.size(); }
  [[nodiscard]] RdmaChannel& at(std::size_t shard) {
    return *shards_[shard].channel;
  }
  [[nodiscard]] const RdmaChannel& at(std::size_t shard) const {
    return *shards_[shard].channel;
  }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Stable placement: key's home shard, independent of health.
  [[nodiscard]] std::size_t home_shard(std::uint64_t key) const {
    return static_cast<std::size_t>(key % shards_.size());
  }

  [[nodiscard]] Health health(std::size_t shard) const {
    return shards_[shard].health;
  }
  /// Monotonic reconnect generation for `shard`: bumped every time the
  /// control plane re-points the channel at a rebuilt server. Cached
  /// state filled under an older epoch may be stale (the server's
  /// memory was repopulated) and should be refreshed, not served.
  [[nodiscard]] std::uint32_t epoch(std::size_t shard) const {
    return shards_[shard].epoch;
  }
  [[nodiscard]] bool is_up(std::size_t shard) const {
    return shards_[shard].health == Health::kUp;
  }
  [[nodiscard]] std::size_t up_count() const;

  /// Route an operation: the home shard when it is up, nullopt when it
  /// is down (the caller degrades). Counts into ShardStats.
  [[nodiscard]] std::optional<std::size_t> route(std::uint64_t key);

  /// Which shard owns this response, if any (per-channel QPN demux).
  [[nodiscard]] std::optional<std::size_t> owner_of(
      const roce::RoceMessage& msg) const;

  /// --- Health observations (reported by the owning primitive) --------
  void note_ok(std::size_t shard);
  void note_timeout(std::size_t shard);
  /// A NAK is still a response, so it always proves liveness (clearing
  /// the timeout streak, reviving a down shard). Only syndromes that
  /// indicate a broken responder (remote access/op errors) count toward
  /// down_after_naks; sequence errors are ordinary go-back-N recovery on
  /// a lossy link and invalid-request NAKs are expired-replay-cache
  /// artifacts.
  void note_nak(std::size_t shard, roce::AckSyndrome syndrome);

  /// True when `msg` answers one of this set's health probes — the
  /// caller should consume the packet and do nothing else. Flips a down
  /// shard up.
  [[nodiscard]] bool maybe_probe_response(std::size_t shard,
                                          const roce::RoceMessage& msg);

  /// True when `msg` is a CNP: forwards it to the shard's rate machine
  /// and tells the caller to consume the packet. CNPs deliberately do
  /// NOT touch shard health — congestion is a fabric condition, not a
  /// server failure, and marking a shard down for it would route real
  /// traffic away from a perfectly live responder.
  [[nodiscard]] bool maybe_cnp(std::size_t shard,
                               const roce::RoceMessage& msg);

  /// Arm DCQCN on every shard's channel (shards added by reconnect keep
  /// their controller: reconnect swaps configs, not channels).
  void enable_congestion_control(const DcqcnConfig& config);

  void set_health_fn(HealthFn fn) { health_fn_ = std::move(fn); }

  /// Record every up/down transition into `recorder` (not owned;
  /// nullptr detaches). Separate from the HealthFn slot, which the
  /// primitives claim for failover.
  void set_flight_recorder(telemetry::FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  /// Swap in a rebuilt channel config for `shard` (after the control
  /// plane reconnected against a restarted server). The shard's channel
  /// is re-pointed at the fresh {QPN, PSN, rkey}, pending probe PSNs
  /// and health streaks are cleared, but the shard STAYS in its current
  /// health state — the next probe (or real response) through the new
  /// channel proves the server back and flips it up.
  void reconnect(std::size_t shard, control::RdmaChannelConfig config);

  [[nodiscard]] const ShardStats& shard_stats(std::size_t shard) const {
    return shards_[shard].stats;
  }

  /// Duration of the shard's outage: the live value while it is down,
  /// the last completed outage after recovery, 0 if never down.
  [[nodiscard]] sim::Time outage(std::size_t shard) const;

  /// Per-shard channel metrics + routing/health counters under
  /// `<prefix>/shard<i>/...` (health gauge, failover_duration gauge,
  /// transition counters), plus a set-level `<prefix>/up_shards` gauge.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::OpTracer* tracer,
                        const std::string& prefix);

 private:
  struct Shard {
    std::unique_ptr<RdmaChannel> channel;
    Health health = Health::kUp;
    int consecutive_timeouts = 0;
    int consecutive_naks = 0;
    sim::Time down_since = 0;
    sim::Time last_outage = 0;
    std::uint32_t epoch = 0;
    std::unordered_set<roce::Psn> probe_psns;
    ShardStats stats;
  };

  void mark_down(std::size_t shard);
  void mark_up(std::size_t shard);
  void schedule_probe();
  void on_probe_timer();

  switchsim::ProgrammableSwitch* switch_;
  Config config_;
  std::vector<Shard> shards_;
  HealthFn health_fn_;
  telemetry::FlightRecorder* flight_recorder_ = nullptr;
  bool probe_pending_ = false;
};

}  // namespace xmem::core
