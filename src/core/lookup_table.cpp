#include "core/lookup_table.hpp"

#include <cassert>

#include "core/primitive.hpp"
#include "net/bytes.hpp"
#include "net/flow.hpp"

namespace xmem::core {

using switchsim::Action;
using switchsim::PipelineContext;

namespace {

std::optional<std::vector<std::uint8_t>> five_tuple_key(
    const net::Packet& packet) {
  auto tuple = net::extract_five_tuple(packet);
  if (!tuple) return std::nullopt;
  const auto k = tuple->key_bytes();
  return std::vector<std::uint8_t>(k.begin(), k.end());
}

}  // namespace

LookupTablePrimitive::LookupTablePrimitive(
    switchsim::ProgrammableSwitch& sw,
    std::vector<control::RdmaChannelConfig> channels, Config config)
    : switch_(&sw), config_(std::move(config)) {
  assert(!channels.empty());
  assert(config_.entry_bytes > kFrameOffset);
  const std::size_t region_bytes = channels.front().region_bytes;
  for (auto& cfg : channels) {
    assert(cfg.region_bytes == region_bytes && "shards must be equal size");
    assert(config_.entry_bytes <= cfg.path_mtu &&
           "entries must fit one READ response segment");
    channels_.push_back(std::make_unique<RdmaChannel>(sw, std::move(cfg)));
  }
  if (!config_.key_fn) config_.key_fn = five_tuple_key;
  entries_per_shard_ = region_bytes / config_.entry_bytes;
  n_entries_ = entries_per_shard_ * channels_.size();
  assert(n_entries_ > 0);

  sw.add_ingress_stage("lookup-table",
                       [this](PipelineContext& ctx) { on_ingress(ctx); });
}

void LookupTablePrimitive::attach_telemetry(
    telemetry::MetricsRegistry* registry, telemetry::OpTracer* tracer,
    const std::string& prefix) {
  if (registry != nullptr) {
    auto counter = [&](const char* field, const std::uint64_t* value,
                       const char* unit) {
      registry->register_counter(
          prefix + "/" + field,
          [value]() { return static_cast<std::int64_t>(*value); }, unit);
    };
    counter("cache_hits", &stats_.cache_hits, "lookups");
    counter("remote_lookups", &stats_.remote_lookups, "lookups");
    counter("applied", &stats_.applied, "packets");
    counter("no_entry_drops", &stats_.no_entry_drops, "packets");
    counter("collision_drops", &stats_.collision_drops, "packets");
    counter("cache_inserts", &stats_.cache_inserts, "entries");
    counter("cache_evictions", &stats_.cache_evictions, "entries");
    counter("held_packets", &stats_.held_packets, "packets");
    counter("lost_responses", &stats_.lost_responses, "ops");
    counter("oversized_drops", &stats_.oversized_drops, "packets");
    registry->register_gauge(
        prefix + "/outstanding",
        [this]() {
          return static_cast<double>(inflight_.size() + pending_.size());
        },
        "lookups");
    registry->register_gauge(
        prefix + "/cache_size",
        [this]() { return static_cast<double>(cache_.size()); }, "entries");
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_[i]->attach_telemetry(registry, tracer,
                                   prefix + "/shard" + std::to_string(i));
  }
}

std::uint64_t LookupTablePrimitive::index_for_key(
    std::span<const std::uint8_t> key, std::size_t n_entries,
    std::uint64_t seed) {
  return net::fnv1a(key, seed) % n_entries;
}

std::uint64_t LookupTablePrimitive::key_check_hash(
    std::span<const std::uint8_t> key) {
  // Independent second hash: different seed constant.
  return net::fnv1a(key, 0xdeadbeefcafef00dULL);
}

std::uint64_t LookupTablePrimitive::install_entry(
    std::span<std::uint8_t> region, std::size_t entry_bytes,
    std::span<const std::uint8_t> key, const Action& action,
    std::uint64_t seed) {
  const std::size_t n_entries = region.size() / entry_bytes;
  const std::uint64_t idx = index_for_key(key, n_entries, seed);

  std::vector<std::uint8_t> buf;
  buf.reserve(kLenOffset);
  net::ByteWriter w(buf);
  action.serialize(w);
  w.u64(key_check_hash(key));

  auto slot = region.subspan(idx * entry_bytes, entry_bytes);
  std::copy(buf.begin(), buf.end(), slot.begin());
  return idx;
}

std::pair<std::size_t, std::uint64_t>
LookupTablePrimitive::install_entry_sharded(
    std::span<const std::span<std::uint8_t>> regions, std::size_t entry_bytes,
    std::span<const std::uint8_t> key, const Action& action,
    std::uint64_t seed) {
  assert(!regions.empty());
  const std::size_t per_shard = regions.front().size() / entry_bytes;
  const std::size_t total = per_shard * regions.size();
  const std::uint64_t idx = index_for_key(key, total, seed);
  const std::size_t shard = idx % regions.size();
  const std::uint64_t slot = idx / regions.size();

  std::vector<std::uint8_t> buf;
  net::ByteWriter w(buf);
  action.serialize(w);
  w.u64(key_check_hash(key));
  auto dst = regions[shard].subspan(slot * entry_bytes, entry_bytes);
  std::copy(buf.begin(), buf.end(), dst.begin());
  return {shard, slot};
}

void LookupTablePrimitive::on_ingress(PipelineContext& ctx) {
  if (auto msg = roce_view(ctx)) {
    for (std::size_t shard = 0; shard < channels_.size(); ++shard) {
      if (channels_[shard]->owns(*msg)) {
        handle_response(shard, *msg);
        ctx.consume();
        return;
      }
    }
    return;
  }

  auto key = config_.key_fn(ctx.packet);
  if (!key) return;  // not table traffic

  // Local SRAM cache first: a hit applies the action with no remote
  // access at all.
  if (config_.cache_capacity > 0) {
    auto it = cache_.find(*key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      auto egress = apply_action(it->second, ctx.packet);
      if (egress) {
        ctx.egress_port = *egress;
      } else {
        ctx.drop();
      }
      return;
    }
  }

  remote_lookup(ctx, *key);
}

void LookupTablePrimitive::remote_lookup(PipelineContext& ctx,
                                         std::span<const std::uint8_t> key) {
  ++stats_.remote_lookups;
  const std::uint64_t idx =
      index_for_key(key, n_entries_, config_.hash_seed);
  const std::size_t shard = static_cast<std::size_t>(idx % channels_.size());
  const std::uint64_t slot = idx / channels_.size();
  RdmaChannel& channel = *channels_[shard];
  const std::uint64_t va =
      channel.config().base_va + slot * config_.entry_bytes;

  if (config_.mode == Mode::kBounce) {
    // Deposit the original packet into the entry's packet slot, then
    // read the whole entry back. No switch-side per-packet state.
    if (kFrameOffset + ctx.packet.size() > config_.entry_bytes) {
      // The slot cannot hold this packet; depositing would clobber the
      // neighbouring entry. Size entry_bytes for the MTU of table
      // traffic.
      ++stats_.oversized_drops;
      ctx.drop();
      return;
    }
    std::vector<std::uint8_t> deposit;
    deposit.reserve(4 + ctx.packet.size());
    net::ByteWriter w(deposit);
    w.u32(static_cast<std::uint32_t>(ctx.packet.size()));
    w.bytes(ctx.packet.bytes());
    channel.post_write(va + kLenOffset, deposit);

    const std::uint32_t psn = channel.post_read(
        va, static_cast<std::uint32_t>(config_.entry_bytes));
    inflight_.emplace(ShardPsn{shard, psn}, true);
    ctx.consume();
  } else {
    // Recirculate variant: hold the original, fetch only the action and
    // the key-check word.
    const std::uint32_t psn = channel.post_read(
        va, static_cast<std::uint32_t>(kLenOffset));
    pending_.emplace(ShardPsn{shard, psn}, ctx.packet.clone());
    if (pending_.size() > stats_.held_packets) {
      stats_.held_packets = pending_.size();
    }
    ctx.consume();
  }
}

void LookupTablePrimitive::handle_response(std::size_t shard,
                                           const roce::RoceMessage& msg) {
  if (!roce::is_read_response(msg.opcode())) return;

  if (config_.mode == Mode::kBounce) {
    auto it = inflight_.find(ShardPsn{shard, msg.bth.psn});
    if (it == inflight_.end()) return;  // stale
    inflight_.erase(it);
    channels_[shard]->trace_complete(msg.bth.psn);

    try {
      net::ByteReader r(msg.payload);
      const Action action = Action::parse(r);
      if (action.kind == Action::Kind::kNone) {
        ++stats_.no_entry_drops;  // empty slot: no entry installed
        return;
      }
      const std::uint64_t stored_check = r.u64();
      const std::uint32_t len = r.u32();
      const auto frame = r.bytes(len);
      net::Packet packet(
          std::vector<std::uint8_t>(frame.begin(), frame.end()));

      auto key = config_.key_fn(packet);
      if (!key || key_check_hash(*key) != stored_check) {
        ++stats_.collision_drops;
        return;
      }
      if (config_.cache_capacity > 0) cache_insert(*key, action);
      auto egress = apply_action(action, packet);
      if (egress) {
        switch_->inject(std::move(packet), *egress);
      }
    } catch (const net::BufferError&) {
      ++stats_.lost_responses;
    }
    return;
  }

  // Recirculate mode.
  auto it = pending_.find(ShardPsn{shard, msg.bth.psn});
  if (it == pending_.end()) return;
  net::Packet packet = std::move(it->second);
  pending_.erase(it);
  channels_[shard]->trace_complete(msg.bth.psn);

  try {
    net::ByteReader r(msg.payload);
    const Action action = Action::parse(r);
    if (action.kind == Action::Kind::kNone) {
      ++stats_.no_entry_drops;  // empty slot: no entry installed
      return;
    }
    const std::uint64_t stored_check = r.u64();
    auto key = config_.key_fn(packet);
    if (!key || key_check_hash(*key) != stored_check) {
      ++stats_.collision_drops;
      return;
    }
    if (config_.cache_capacity > 0) cache_insert(*key, action);
    auto egress = apply_action(action, packet);
    if (egress) {
      switch_->inject(std::move(packet), *egress);
    }
  } catch (const net::BufferError&) {
    ++stats_.lost_responses;
  }
}

std::optional<int> LookupTablePrimitive::apply_action(const Action& action,
                                                      net::Packet& packet) {
  switch (action.kind) {
    case Action::Kind::kForward:
      ++stats_.applied;
      return action.port;
    case Action::Kind::kSetDscp:
      net::rewrite_dscp(packet, action.dscp);
      ++stats_.applied;
      return action.port;
    case Action::Kind::kRewriteDst: {
      // Virtual -> physical translation: rewrite L2 and L3 destination.
      auto& bytes = packet.mutable_bytes();
      const auto& mac = action.new_dst_mac.octets();
      std::copy(mac.begin(), mac.end(), bytes.begin());
      net::rewrite_dst_ip(packet, action.new_dst_ip);
      ++stats_.applied;
      return action.port;
    }
    case Action::Kind::kDrop:
    case Action::Kind::kNone:
      ++stats_.no_entry_drops;
      return std::nullopt;
  }
  return std::nullopt;
}

void LookupTablePrimitive::cache_insert(std::vector<std::uint8_t> key,
                                        const Action& action) {
  if (cache_.contains(key)) return;
  if (cache_.size() >= config_.cache_capacity) {
    cache_.erase(cache_fifo_.front());
    cache_fifo_.pop_front();
    ++stats_.cache_evictions;
  }
  cache_fifo_.push_back(key);
  cache_.emplace(std::move(key), action);
  ++stats_.cache_inserts;
}

}  // namespace xmem::core
