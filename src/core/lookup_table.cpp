#include "core/lookup_table.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/primitive.hpp"
#include "net/bytes.hpp"
#include "net/flow.hpp"

namespace xmem::core {

using switchsim::Action;
using switchsim::PipelineContext;

namespace {

std::optional<std::vector<std::uint8_t>> five_tuple_key(
    const net::Packet& packet) {
  auto tuple = net::extract_five_tuple(packet);
  if (!tuple) return std::nullopt;
  const auto k = tuple->key_bytes();
  return std::vector<std::uint8_t>(k.begin(), k.end());
}

LookupCache::Config cache_config_from(
    const LookupTablePrimitive::Config& config) {
  LookupCache::Config cc;
  cc.capacity = config.cache_capacity;
  cc.policy = config.cache_policy.value_or(
      LookupCache::policy_from_env(LookupCache::Policy::kLru));
  cc.negative_ttl = config.negative_ttl;
  cc.lfu_protected_fraction = config.lfu_protected_fraction;
  return cc;
}

}  // namespace

LookupTablePrimitive::LookupTablePrimitive(
    switchsim::ProgrammableSwitch& sw,
    std::vector<control::RdmaChannelConfig> channels, Config config)
    : switch_(&sw),
      channels_(sw, std::move(channels), config.health),
      config_(std::move(config)),
      cache_(cache_config_from(config_)) {
  assert(config_.entry_bytes > kFrameOffset);
  const std::size_t region_bytes = channels_.at(0).config().region_bytes;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    assert(channels_.at(i).config().region_bytes == region_bytes &&
           "shards must be equal size");
    assert(config_.entry_bytes <= channels_.at(i).config().path_mtu &&
           "entries must fit one READ response segment");
  }
  if (!config_.key_fn) config_.key_fn = five_tuple_key;
  rto_.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    AdaptiveRtoConfig rc = config_.adaptive_rto;
    rc.jitter_seed ^= i * 0x2545f4914f6cdd1dULL;  // per-shard jitter stream
    rto_.emplace_back(rc);
  }
  entries_per_shard_ = region_bytes / config_.entry_bytes;
  n_entries_ = entries_per_shard_ * channels_.size();
  assert(n_entries_ > 0);
  channels_.set_health_fn([this](std::size_t shard, ChannelSet::Health h) {
    on_health_change(shard, h);
  });

  sw.add_ingress_stage("lookup-table",
                       [this](PipelineContext& ctx) { on_ingress(ctx); });
}

void LookupTablePrimitive::attach_telemetry(
    telemetry::MetricsRegistry* registry, telemetry::OpTracer* tracer,
    const std::string& prefix) {
  if (registry != nullptr) {
    auto counter = [&](const char* field, const std::uint64_t* value,
                       const char* unit) {
      registry->register_counter(
          prefix + "/" + field,
          [value]() { return static_cast<std::int64_t>(*value); }, unit);
    };
    counter("cache_hits", &stats_.cache_hits, "lookups");
    counter("remote_lookups", &stats_.remote_lookups, "lookups");
    counter("applied", &stats_.applied, "packets");
    counter("no_entry_drops", &stats_.no_entry_drops, "packets");
    counter("collision_drops", &stats_.collision_drops, "packets");
    counter("cache_inserts", &stats_.cache_inserts, "entries");
    counter("cache_evictions", &stats_.cache_evictions, "entries");
    counter("held_packets", &stats_.held_packets, "packets");
    counter("lost_responses", &stats_.lost_responses, "ops");
    counter("oversized_drops", &stats_.oversized_drops, "packets");
    counter("duplicate_responses", &stats_.duplicate_responses, "ops");
    counter("degraded_passthrough", &stats_.degraded_passthrough, "packets");
    counter("negative_cache_drops", &stats_.negative_cache_drops, "packets");
    counter("cache_hits_while_down", &stats_.cache_hits_while_down, "lookups");
    counter("cache_stale_refetches", &stats_.cache_stale_refetches, "lookups");
    counter("degraded_bypass", &stats_.degraded_bypass, "packets");
    registry->register_gauge(
        prefix + "/outstanding",
        [this]() { return static_cast<double>(outstanding()); }, "lookups");
    registry->register_gauge(
        prefix + "/cache_size",
        [this]() { return static_cast<double>(cache_.size()); }, "entries");
  }
  cache_.attach_telemetry(registry, prefix + "/cache");
  channels_.attach_telemetry(registry, tracer, prefix);
}

std::uint64_t LookupTablePrimitive::index_for_key(
    std::span<const std::uint8_t> key, std::size_t n_entries,
    std::uint64_t seed) {
  return net::fnv1a(key, seed) % n_entries;
}

std::uint64_t LookupTablePrimitive::key_check_hash(
    std::span<const std::uint8_t> key) {
  // Independent second hash: different seed constant.
  return net::fnv1a(key, 0xdeadbeefcafef00dULL);
}

std::uint64_t LookupTablePrimitive::install_entry(
    std::span<std::uint8_t> region, std::size_t entry_bytes,
    std::span<const std::uint8_t> key, const Action& action,
    std::uint64_t seed) {
  const std::size_t n_entries = region.size() / entry_bytes;
  const std::uint64_t idx = index_for_key(key, n_entries, seed);

  std::vector<std::uint8_t> buf;
  buf.reserve(kLenOffset);
  net::ByteWriter w(buf);
  action.serialize(w);
  w.u64(key_check_hash(key));

  auto slot = region.subspan(idx * entry_bytes, entry_bytes);
  std::copy(buf.begin(), buf.end(), slot.begin());
  return idx;
}

std::pair<std::size_t, std::uint64_t>
LookupTablePrimitive::install_entry_sharded(
    std::span<const std::span<std::uint8_t>> regions, std::size_t entry_bytes,
    std::span<const std::uint8_t> key, const Action& action,
    std::uint64_t seed) {
  assert(!regions.empty());
  const std::size_t per_shard = regions.front().size() / entry_bytes;
  const std::size_t total = per_shard * regions.size();
  const std::uint64_t idx = index_for_key(key, total, seed);
  const std::size_t shard = idx % regions.size();
  const std::uint64_t slot = idx / regions.size();

  std::vector<std::uint8_t> buf;
  net::ByteWriter w(buf);
  action.serialize(w);
  w.u64(key_check_hash(key));
  auto dst = regions[shard].subspan(slot * entry_bytes, entry_bytes);
  std::copy(buf.begin(), buf.end(), dst.begin());
  return {shard, slot};
}

void LookupTablePrimitive::on_ingress(PipelineContext& ctx) {
  if (auto msg = roce_view(ctx)) {
    if (auto shard = channels_.owner_of(*msg)) {
      if (!channels_.maybe_cnp(*shard, *msg) &&
          !channels_.maybe_probe_response(*shard, *msg)) {
        handle_response(*shard, *msg);
      }
      ctx.consume();
    }
    return;
  }

  auto key = config_.key_fn(ctx.packet);
  if (!key) return;  // not table traffic

  const std::uint64_t idx =
      index_for_key(*key, n_entries_, config_.hash_seed);
  const std::size_t home = channels_.home_shard(idx);
  const bool home_up = channels_.is_up(home);

  // Local SRAM cache first: a hit applies the action with no remote
  // access at all. With the home shard down the cache either keeps
  // serving hits through the outage (kServeHits — misses degrade) or is
  // skipped outright (kBypass — everything degrades).
  const bool bypass =
      !home_up &&
      config_.degraded_cache == DegradedCacheMode::kBypass;
  if (cache_.enabled() && bypass) ++stats_.degraded_bypass;
  if (cache_.enabled() && !bypass) {
    const sim::Time now = switch_->simulator().now();
    if (auto hit = cache_.lookup(*key, now)) {
      if (!hit->negative && hit->epoch != channels_.epoch(hit->shard)) {
        // Filled before the shard's last reconnect: the server's memory
        // may have been repopulated since. Refetch instead of serving.
        ++stats_.cache_stale_refetches;
        cache_.invalidate(*key);
        sync_cache_stats();
      } else if (hit->negative) {
        // Absent-key verdict served locally: same outcome as the remote
        // READ of an empty slot, without the READ.
        ++stats_.negative_cache_drops;
        sync_cache_stats();
        ctx.drop();
        return;
      } else {
        if (!home_up) ++stats_.cache_hits_while_down;
        auto egress = apply_action(*hit->action, ctx.packet);
        sync_cache_stats();
        if (egress) {
          ctx.egress_port = *egress;
        } else {
          ctx.drop();
        }
        return;
      }
    } else {
      sync_cache_stats();
    }
  }

  remote_lookup(ctx, idx);
}

void LookupTablePrimitive::remote_lookup(PipelineContext& ctx,
                                         std::uint64_t idx) {
  const auto shard = channels_.route(idx);
  if (!shard) {
    // Home shard down: degrade to the local-miss default action — the
    // packet passes through the pipeline un-looked-up instead of
    // bouncing into a dead server. No rehash: the entry stays put for
    // when the shard recovers.
    ++stats_.degraded_passthrough;
    return;
  }
  ++stats_.remote_lookups;
  const std::uint64_t slot = idx / channels_.size();
  RdmaChannel& channel = channels_.at(*shard);
  const std::uint64_t va =
      channel.config().base_va + slot * config_.entry_bytes;
  const sim::Time now = switch_->simulator().now();

  if (config_.mode == Mode::kBounce) {
    // Deposit the original packet into the entry's packet slot, then
    // read the whole entry back. No switch-side per-packet state.
    if (kFrameOffset + ctx.packet.size() > config_.entry_bytes) {
      // The slot cannot hold this packet; depositing would clobber the
      // neighbouring entry. Size entry_bytes for the MTU of table
      // traffic.
      ++stats_.oversized_drops;
      ctx.drop();
      return;
    }
    std::vector<std::uint8_t> deposit;
    deposit.reserve(4 + ctx.packet.size());
    net::ByteWriter w(deposit);
    w.u32(static_cast<std::uint32_t>(ctx.packet.size()));
    w.bytes(ctx.packet.bytes());
    channel.post_write(va + kLenOffset, deposit);

    const roce::Psn psn = channel.post_read(
        va, static_cast<std::uint32_t>(config_.entry_bytes));
    inflight_.emplace(ShardPsn{*shard, psn}, now);
    ctx.consume();
  } else {
    // Recirculate variant: hold the original, fetch only the action and
    // the key-check word.
    const roce::Psn psn = channel.post_read(
        va, static_cast<std::uint32_t>(kLenOffset));
    pending_.emplace(ShardPsn{*shard, psn}, Held{ctx.packet.clone(), now});
    if (pending_.size() > stats_.held_packets) {
      stats_.held_packets = pending_.size();
    }
    ctx.consume();
  }
  arm_timeout();
}

void LookupTablePrimitive::handle_response(std::size_t shard,
                                           const roce::RoceMessage& msg) {
  if (!roce::is_read_response(msg.opcode())) return;

  if (config_.mode == Mode::kBounce) {
    auto it = inflight_.find(ShardPsn{shard, msg.bth.psn});
    if (it == inflight_.end()) {
      ++stats_.duplicate_responses;  // stale or duplicated delivery
      return;
    }
    rto_[shard].sample(switch_->simulator().now() - it->second);
    inflight_.erase(it);
    channels_.note_ok(shard);
    channels_.at(shard).trace_complete(msg.bth.psn);

    try {
      net::ByteReader r(msg.payload);
      const Action action = Action::parse(r);
      if (action.kind == Action::Kind::kNone) {
        ++stats_.no_entry_drops;  // empty slot: no entry installed
        // The deposited frame is still in the entry's packet slot —
        // recover the key from it so the absence itself can be cached.
        if (cache_.enabled() && config_.negative_ttl > 0) {
          r.u64();  // key-check of an empty slot: zeros, skip
          const std::uint32_t len = r.u32();
          const auto frame = r.bytes(len);
          net::Packet deposited(
              std::vector<std::uint8_t>(frame.begin(), frame.end()));
          if (auto key = config_.key_fn(deposited)) {
            cache_store_negative(*key, shard);
          }
        }
        return;
      }
      const std::uint64_t stored_check = r.u64();
      const std::uint32_t len = r.u32();
      const auto frame = r.bytes(len);
      net::Packet packet(
          std::vector<std::uint8_t>(frame.begin(), frame.end()));

      auto key = config_.key_fn(packet);
      if (!key || key_check_hash(*key) != stored_check) {
        ++stats_.collision_drops;
        return;
      }
      cache_store(*key, action, shard);
      auto egress = apply_action(action, packet);
      if (egress) {
        switch_->inject(std::move(packet), *egress);
      }
    } catch (const net::BufferError&) {
      ++stats_.lost_responses;
    }
    return;
  }

  // Recirculate mode.
  auto it = pending_.find(ShardPsn{shard, msg.bth.psn});
  if (it == pending_.end()) {
    ++stats_.duplicate_responses;  // stale or duplicated delivery
    return;
  }
  rto_[shard].sample(switch_->simulator().now() - it->second.sent_at);
  net::Packet packet = std::move(it->second.packet);
  pending_.erase(it);
  channels_.note_ok(shard);
  channels_.at(shard).trace_complete(msg.bth.psn);

  try {
    net::ByteReader r(msg.payload);
    const Action action = Action::parse(r);
    if (action.kind == Action::Kind::kNone) {
      ++stats_.no_entry_drops;  // empty slot: no entry installed
      // Recirc mode held the original packet, so the key is at hand.
      if (auto key = config_.key_fn(packet)) {
        cache_store_negative(*key, shard);
      }
      return;
    }
    const std::uint64_t stored_check = r.u64();
    auto key = config_.key_fn(packet);
    if (!key || key_check_hash(*key) != stored_check) {
      ++stats_.collision_drops;
      return;
    }
    cache_store(*key, action, shard);
    auto egress = apply_action(action, packet);
    if (egress) {
      switch_->inject(std::move(packet), *egress);
    }
  } catch (const net::BufferError&) {
    ++stats_.lost_responses;
  }
}

void LookupTablePrimitive::on_health_change(std::size_t shard,
                                            ChannelSet::Health health) {
  if (health == ChannelSet::Health::kUp) return;
  // Down transition: every lookup in flight on this shard is now
  // unanswerable. Reclaim the switch-side state at once instead of
  // letting the scavenger expire it piecemeal; bounce-mode originals are
  // already in the dead server's DRAM and are simply lost.
  reclaim_shard(shard);
}

void LookupTablePrimitive::reconnect(std::size_t shard,
                                     control::RdmaChannelConfig config) {
  // Lookups in flight against the old NIC epoch will never answer
  // through the new channel (fresh QPN, stale READ responses cannot
  // alias it): reclaim them now instead of waiting for the scavenger.
  reclaim_shard(shard);
  channels_.reconnect(shard, std::move(config));
  rto_[shard].reset();  // RTTs to the old server say nothing about the new
}

void LookupTablePrimitive::reclaim_shard(std::size_t shard) {
  std::vector<ShardPsn> keys;
  for (const auto& [key, sent_at] : inflight_) {
    if (key.shard == shard) keys.push_back(key);
  }
  for (const auto& [key, held] : pending_) {
    if (key.shard == shard) keys.push_back(key);
  }
  // Reclaim in PSN order (numeric, one shard): trace completion must
  // replay identically run to run, not in hash order.
  std::sort(keys.begin(), keys.end(), [](const ShardPsn& a,
                                         const ShardPsn& b) {
    return a.psn.raw() < b.psn.raw();
  });
  for (const ShardPsn& key : keys) {
    inflight_.erase(key);
    pending_.erase(key);
    ++stats_.lost_responses;
    channels_.at(shard).trace_complete(key.psn, "failover");
  }
}

void LookupTablePrimitive::arm_timeout() {
  if (timeout_.pending()) return;
  sim::Time delay = config_.lookup_timeout;
  if (config_.adaptive_rto.enabled) {
    // Fire at the earliest shard deadline; on_timeout() judges each
    // lookup against its own shard's (backed-off) deadline.
    delay = rto_[0].rto();
    for (std::size_t i = 1; i < rto_.size(); ++i) {
      delay = std::min(delay, rto_[i].rto());
    }
  }
  timeout_ =
      switch_->simulator().schedule_in(delay, [this]() { on_timeout(); });
}

void LookupTablePrimitive::on_timeout() {
  if (inflight_.empty() && pending_.empty()) return;  // re-armed on next post
  const sim::Time now = switch_->simulator().now();
  std::vector<ShardPsn> stale;
  for (const auto& [key, sent_at] : inflight_) {
    if (now - sent_at >= shard_timeout(key.shard)) stale.push_back(key);
  }
  for (const auto& [key, held] : pending_) {
    if (now - held.sent_at >= shard_timeout(key.shard)) stale.push_back(key);
  }
  // Expire in (shard, PSN) order, not hash order: drops, traces and
  // health observations are part of the replay.
  std::sort(stale.begin(), stale.end(), [](const ShardPsn& a,
                                           const ShardPsn& b) {
    return a.shard != b.shard ? a.shard < b.shard
                              : a.psn.raw() < b.psn.raw();
  });
  std::vector<bool> shard_expired(channels_.size(), false);
  for (const ShardPsn& key : stale) shard_expired[key.shard] = true;
  for (const ShardPsn& key : stale) {
    // A lookup abandoned: the packet it carried is gone either way
    // (deposited remotely in bounce mode, held copy dropped in recirc
    // mode). Each expiry is a timeout observation against its shard —
    // unless an earlier observation already tripped the down transition,
    // whose handler reclaimed the rest of the shard's keys.
    const bool present =
        inflight_.erase(key) > 0 || pending_.erase(key) > 0;
    if (!present) continue;
    ++stats_.lost_responses;
    channels_.at(key.shard).trace_complete(key.psn, "lost");
    channels_.note_timeout(key.shard);
  }
  // One backoff step per shard per round, however many lookups expired.
  for (std::size_t shard = 0; shard < shard_expired.size(); ++shard) {
    if (shard_expired[shard]) rto_[shard].note_timeout();
  }
  arm_timeout();
}

std::optional<int> LookupTablePrimitive::apply_action(const Action& action,
                                                      net::Packet& packet) {
  switch (action.kind) {
    case Action::Kind::kForward:
      ++stats_.applied;
      return action.port;
    case Action::Kind::kSetDscp:
      net::rewrite_dscp(packet, action.dscp);
      ++stats_.applied;
      return action.port;
    case Action::Kind::kRewriteDst: {
      // Virtual -> physical translation: rewrite L2 and L3 destination.
      const auto bytes = packet.mutable_bytes();
      const auto& mac = action.new_dst_mac.octets();
      std::copy(mac.begin(), mac.end(), bytes.begin());
      net::rewrite_dst_ip(packet, action.new_dst_ip);
      ++stats_.applied;
      return action.port;
    }
    case Action::Kind::kDrop:
    case Action::Kind::kNone:
      ++stats_.no_entry_drops;
      return std::nullopt;
  }
  return std::nullopt;
}

void LookupTablePrimitive::cache_store(const std::vector<std::uint8_t>& key,
                                       const Action& action,
                                       std::size_t shard) {
  if (!cache_.enabled()) return;
  cache_.insert(key, action, static_cast<std::uint32_t>(shard),
                channels_.epoch(shard), switch_->simulator().now());
  sync_cache_stats();
}

void LookupTablePrimitive::cache_store_negative(
    const std::vector<std::uint8_t>& key, std::size_t shard) {
  if (!cache_.enabled() || config_.negative_ttl <= 0) return;
  cache_.insert_negative(key, static_cast<std::uint32_t>(shard),
                         channels_.epoch(shard), switch_->simulator().now());
  sync_cache_stats();
}

bool LookupTablePrimitive::invalidate_cached(
    std::span<const std::uint8_t> key) {
  const bool dropped =
      cache_.invalidate(LookupCache::Key(key.begin(), key.end()));
  sync_cache_stats();
  return dropped;
}

void LookupTablePrimitive::sync_cache_stats() {
  const LookupCache::Stats& cs = cache_.stats();
  stats_.cache_hits = cs.hits;
  stats_.cache_inserts = cs.inserts;
  stats_.cache_evictions = cs.evictions;
}

}  // namespace xmem::core
