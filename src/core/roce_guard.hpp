// RoceGuard: the switch-side ICRC verification stage.
//
// build_roce_packet crafts an ICRC over the invariant fields and
// parse_roce_packet refuses frames whose ICRC does not match — but the
// primitives' stages treat an unparseable RoCE frame as "not mine" and
// let it fall through to L2 forwarding, so before this stage a corrupted
// READ response would be *forwarded to a host* instead of dropped the
// way real RoCE hardware drops it. Install RoceGuard ahead of every
// primitive stage: frames that are structurally RoCEv2 but fail the
// ICRC check are dropped there, counted, and never reach a primitive.
#pragma once

#include <cstdint>
#include <string>

#include "switchsim/switch.hpp"
#include "telemetry/int_collector.hpp"
#include "telemetry/metrics.hpp"

namespace xmem::core {

class RoceGuard {
 public:
  struct Stats {
    std::uint64_t checked = 0;        ///< RoCEv2 frames ICRC-verified.
    std::uint64_t corrupt_dropped = 0;
  };

  /// Installs the "roce-guard" ingress stage. Must be added before any
  /// primitive's stage (stages run in registration order).
  explicit RoceGuard(switchsim::ProgrammableSwitch& sw);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Registers `<prefix>/{checked, corrupt_dropped}`.
  void register_metrics(telemetry::MetricsRegistry& registry,
                        const std::string& prefix);

  /// Feed every verified RoCE frame's INT stack to `collector` (not
  /// owned; nullptr detaches). Since the guard sits at switch ingress it
  /// observes RDMA response stacks in transit — the RNIC hop plus the
  /// links crossed so far — which is where remote-memory telemetry
  /// naturally concentrates.
  void set_int_collector(telemetry::IntCollector* collector) {
    int_collector_ = collector;
  }

 private:
  void stage(switchsim::PipelineContext& ctx);

  Stats stats_;
  telemetry::IntCollector* int_collector_ = nullptr;
};

}  // namespace xmem::core
