// Local SRAM cache for the lookup-table primitive (§3's "caching remote
// entries in switch SRAM").
//
// A bounded key -> Action map in front of the remote lookup path, with
// three pluggable eviction policies behind one interface:
//
//   kFifo  insertion order, hits ignored — the paper's baseline and the
//          cheapest to realize in hardware (a head pointer per way).
//   kLru   recency order — a hit moves the entry to the back of one
//          queue, the victim is always the front.
//   kLfu   segmented LFU (SLRU): new entries enter a probation segment;
//          a hit promotes into a protected segment holding
//          lfu_protected_fraction of capacity, whose overflow demotes
//          back to probation. One-hit wonders churn through probation
//          without displacing the hot working set — the behaviour a
//          heavy-tailed (Zipfian) popularity distribution rewards.
//
// Beyond positive entries the cache stores two more kinds of fact:
//
//   Negative entries.  A remote READ that came back "no entry" can be
//   remembered for negative_ttl, so a scan of absent keys stops
//   re-issuing one remote READ per packet. Negative entries occupy
//   normal slots (the cache stays bounded) and expire lazily on hit.
//
//   Fill origin.  Every entry records the {shard, channel epoch} it was
//   filled from. The owning primitive compares the recorded epoch
//   against ChannelSet::epoch(shard) on every hit: a mismatch means the
//   server was reconnected (its memory possibly repopulated) since the
//   fill, and the entry must be refreshed rather than served.
//
// Invalidation is write-through from the control plane's point of view:
// whoever rewrites a remote entry calls invalidate() (or the primitive's
// invalidate_cached()) so the next packet refetches. The cache itself
// never talks to the network — it is a pure bounded map the primitive
// consults, which is exactly the register/SRAM budget a real switch
// pipeline could spend.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "switchsim/action.hpp"
#include "telemetry/metrics.hpp"

namespace xmem::core {

class LookupCache {
 public:
  enum class Policy : std::uint8_t { kFifo, kLru, kLfu };

  [[nodiscard]] static std::string_view policy_name(Policy policy);
  /// Case-insensitive "fifo" / "lru" / "lfu" (also "slfu"); nullopt on
  /// anything else.
  [[nodiscard]] static std::optional<Policy> parse_policy(
      std::string_view name);
  /// XMEM_CACHE_POLICY environment override (the CI cache-matrix
  /// passthrough); `fallback` when unset or unparseable.
  [[nodiscard]] static Policy policy_from_env(Policy fallback);

  using Key = std::vector<std::uint8_t>;

  struct Config {
    /// Bounded capacity in entries (positive + negative); 0 disables.
    std::size_t capacity = 0;
    Policy policy = Policy::kLru;
    /// How long a "no entry" verdict stays servable locally (0 disables
    /// negative caching entirely).
    sim::Time negative_ttl = 0;
    /// kLfu only: share of capacity the hit-promoted protected segment
    /// may hold. Clamped to [0, 1]; at capacity 1 there is no protected
    /// segment and kLfu degenerates to LRU-within-probation.
    double lfu_protected_fraction = 0.8;
  };

  struct Stats {
    std::uint64_t hits = 0;              // positive entries served
    std::uint64_t misses = 0;            // nothing servable found
    std::uint64_t inserts = 0;           // positive fills (first time)
    std::uint64_t refreshes = 0;         // positive fills over an entry
    std::uint64_t evictions = 0;         // capacity victims
    std::uint64_t invalidations = 0;     // invalidate()/clear() removals
    std::uint64_t negative_hits = 0;     // absent-key verdicts served
    std::uint64_t negative_inserts = 0;
    std::uint64_t negative_expired = 0;  // TTL lapses observed on hit
    std::uint64_t promotions = 0;        // kLfu probation -> protected
  };

  /// A servable entry. `action` is null iff `negative`; the pointer is
  /// valid until the next mutating call.
  struct Hit {
    const switchsim::Action* action = nullptr;
    bool negative = false;
    std::uint32_t shard = 0;
    std::uint32_t epoch = 0;
  };

  explicit LookupCache(Config config);
  LookupCache(const LookupCache&) = delete;
  LookupCache& operator=(const LookupCache&) = delete;
  ~LookupCache();

  [[nodiscard]] bool enabled() const { return config_.capacity > 0; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] Policy policy() const { return config_.policy; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Probe for `key`. Counts a hit/negative-hit/miss; expires lapsed
  /// negative entries as a side effect.
  [[nodiscard]] std::optional<Hit> lookup(const Key& key, sim::Time now);

  /// Fill `key` with a fetched action (evicting a victim when full).
  /// Refills an existing entry in place — a refetch after invalidation
  /// or churn carries the newer remote value.
  void insert(const Key& key, const switchsim::Action& action,
              std::uint32_t shard, std::uint32_t epoch, sim::Time now);

  /// Remember that `key` has no remote entry. No-op when negative
  /// caching is disabled (negative_ttl == 0).
  void insert_negative(const Key& key, std::uint32_t shard,
                       std::uint32_t epoch, sim::Time now);

  /// Write-through invalidation hook: the control plane rewrote (or
  /// removed) `key`'s remote entry. True if a local copy was dropped.
  bool invalidate(const Key& key);

  /// Drop every entry filled from `shard` (server reconnect/repopulate).
  /// Returns the number of entries removed.
  std::size_t invalidate_shard(std::uint32_t shard);

  /// Drop everything (counted as invalidations).
  void clear();

  /// Counters for every Stats field plus occupancy/capacity gauges under
  /// `<prefix>/...`. Null registry is a no-op.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        const std::string& prefix);

 private:
  /// One cached entry. Nodes live in the map (stable addresses) and are
  /// threaded onto the policy's intrusive lists via prev/next.
  struct Node {
    const Key* key = nullptr;  // points at the owning map key
    switchsim::Action action;
    bool negative = false;
    sim::Time filled_at = 0;
    std::uint32_t shard = 0;
    std::uint32_t epoch = 0;
    std::uint32_t freq = 0;    // hits since fill (kLfu bookkeeping)
    std::uint8_t segment = 0;  // kLfu: 0 probation, 1 protected
    Node* prev = nullptr;
    Node* next = nullptr;
  };
  /// The pluggable part: policies keep an intrusive order over nodes and
  /// answer "who leaves next". The cache owns storage and stats; the
  /// policy owns only ordering.
  class EvictionPolicy {
   public:
    virtual ~EvictionPolicy() = default;
    virtual void on_insert(Node& node) = 0;
    virtual void on_hit(Node& node) = 0;
    virtual void on_erase(Node& node) = 0;
    [[nodiscard]] virtual Node* victim() = 0;
  };
  class FifoPolicy;
  class LruPolicy;
  class SlfuPolicy;

  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::string_view>{}(std::string_view(
          reinterpret_cast<const char*>(k.data()), k.size()));
    }
  };

  [[nodiscard]] std::unique_ptr<EvictionPolicy> make_policy();
  /// Ensure a free slot exists, evicting the policy's victim if needed,
  /// then fill (new or in-place) and notify the policy.
  Node& fill_slot(const Key& key, bool negative, std::uint32_t shard,
                  std::uint32_t epoch, sim::Time now);
  void erase_node(Node& node);

  Config config_;
  std::unique_ptr<EvictionPolicy> eviction_;
  std::unordered_map<Key, Node, KeyHash> map_;
  Stats stats_;
};

}  // namespace xmem::core
