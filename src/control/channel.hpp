// RDMA channel configuration: everything the control plane hands the
// switch data plane so its primitives can craft RoCE packets —
// "a remote queue pair number (QPN), a base address of the registered
// memory region, and a remote access key (Rkey)" (§3), plus the L2/L3
// addressing and the egress port toward the memory server.
#pragma once

#include <cstdint>

#include "roce/headers.hpp"
#include "roce/packet.hpp"

namespace xmem::control {

/// L2/L3 identity the switch data plane uses as the source of the RoCE
/// packets it crafts. Programmable switches have no host stack; this is
/// simply header material.
struct SwitchIdentity {
  net::MacAddress mac;
  net::Ipv4Address ip;
};

struct RdmaChannelConfig {
  /// Switch-side endpoint (source of crafted requests).
  roce::RoceEndpoint local;
  /// The server RNIC endpoint (destination of requests).
  roce::RoceEndpoint remote;
  /// QPN the switch answers to (responses target this).
  std::uint32_t local_qpn = 0;
  /// QPN of the server RNIC's queue pair.
  std::uint32_t remote_qpn = 0;
  /// Registered region: access key, base VA and size.
  std::uint32_t rkey = 0;
  std::uint64_t base_va = 0;
  std::size_t region_bytes = 0;
  /// First PSN the responder expects.
  roce::Psn initial_psn;
  /// Path MTU agreed for the channel (bounds READ response segments).
  std::size_t path_mtu = 4096;
  /// Switch egress port that reaches the server RNIC.
  int switch_port = -1;
};

}  // namespace xmem::control
