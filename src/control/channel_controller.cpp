#include "control/channel_controller.hpp"

#include <cassert>
#include <stdexcept>

namespace xmem::control {

RdmaChannelConfig ChannelController::setup_channel(host::Host& server,
                                                   int switch_port,
                                                   const ChannelSpec& spec) {
  if (!server.has_rnic()) {
    throw std::invalid_argument(
        "ChannelController: memory server has no RNIC");
  }
  auto& nic = server.rnic();

  // 1. Allocate and register the memory region on the server.
  rnic::MemoryRegion& region =
      nic.memory().register_region(spec.region_bytes, spec.access);

  // 2. Create the server-side queue pair.
  rnic::QueuePair& qp = nic.create_qp();

  // 3. The "switch-side QP" is not a real RNIC object — it is a QPN the
  //    switch data plane recognizes in response BTHs plus a PSN register.
  const std::uint32_t switch_qpn = next_switch_qpn_++;
  const std::uint16_t udp_port = next_udp_port_++;

  RdmaChannelConfig config;
  config.local = roce::RoceEndpoint{switch_identity_.mac, switch_identity_.ip,
                                    udp_port};
  config.remote = server.endpoint();
  config.local_qpn = switch_qpn;
  config.remote_qpn = qp.qpn;
  config.rkey = region.rkey();
  config.base_va = region.base_va();
  config.region_bytes = region.length();
  config.initial_psn = spec.initial_psn;
  config.path_mtu = nic.profile().path_mtu;
  config.switch_port = switch_port;

  // 4. Transition the server QP to ready-to-receive, bound to the
  //    switch's identity.
  nic.connect_qp(qp.qpn, config.local, switch_qpn, spec.initial_psn);
  qp.tolerate_psn_gaps = spec.tolerate_psn_gaps;

  return config;
}

RdmaChannelConfig ChannelController::reconnect(host::Host& server,
                                               const RdmaChannelConfig& old,
                                               const ChannelSpec& spec) {
  if (!server.has_rnic()) {
    throw std::invalid_argument(
        "ChannelController: memory server has no RNIC");
  }
  auto& nic = server.rnic();

  // 1. Re-register the surviving DRAM under a fresh rkey.
  rnic::MemoryRegion* region = nic.memory().reregister(old.rkey);
  if (region == nullptr) {
    throw std::invalid_argument("reconnect: unknown rkey");
  }
  assert(region->base_va() == old.base_va && "region moved across restart");

  // 2. Fresh server QP, fresh switch QPN + UDP port: the old identifiers
  //    died with the NIC epoch, and reusing them would let pre-crash
  //    responses alias into the new channel.
  rnic::QueuePair& qp = nic.create_qp();
  const std::uint32_t switch_qpn = next_switch_qpn_++;
  const std::uint16_t udp_port = next_udp_port_++;

  RdmaChannelConfig config = old;
  config.local = roce::RoceEndpoint{switch_identity_.mac, switch_identity_.ip,
                                    udp_port};
  config.local_qpn = switch_qpn;
  config.remote_qpn = qp.qpn;
  config.rkey = region->rkey();
  config.initial_psn = spec.initial_psn;

  nic.connect_qp(qp.qpn, config.local, switch_qpn, spec.initial_psn);
  qp.tolerate_psn_gaps = spec.tolerate_psn_gaps;

  return config;
}

std::vector<RdmaChannelConfig> ChannelController::setup_pool(
    std::span<const PoolTarget> servers, const ChannelSpec& spec) {
  if (servers.empty()) {
    throw std::invalid_argument("setup_pool: empty server pool");
  }
  std::vector<RdmaChannelConfig> configs;
  configs.reserve(servers.size());
  for (const PoolTarget& target : servers) {
    if (target.server == nullptr) {
      throw std::invalid_argument("setup_pool: null server");
    }
    configs.push_back(setup_channel(*target.server, target.switch_port, spec));
  }
  return configs;
}

std::span<std::uint8_t> ChannelController::region_bytes(
    host::Host& server, const RdmaChannelConfig& config) {
  assert(server.has_rnic());
  rnic::MemoryRegion* region = server.rnic().memory().find(config.rkey);
  if (region == nullptr) {
    throw std::invalid_argument("region_bytes: unknown rkey");
  }
  return region->bytes();
}

}  // namespace xmem::control
