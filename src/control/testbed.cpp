#include "control/testbed.hpp"

namespace xmem::control {

Testbed::Testbed(Config config) {
  tor_ = std::make_unique<switchsim::ProgrammableSwitch>(
      sim_, "tor", config.switch_config);

  for (int i = 0; i < config.hosts; ++i) {
    const auto index = static_cast<std::uint16_t>(i + 1);
    auto host = std::make_unique<host::Host>(
        sim_, "h" + std::to_string(i), net::MacAddress::from_index(index),
        net::Ipv4Address::from_index(index));
    int tor_port = -1;
    int host_port = -1;
    links_.push_back(topo::connect(sim_, *tor_, *host, config.link_rate,
                                   config.link_propagation, &tor_port,
                                   &host_port));
    tor_ports_.push_back(tor_port);
    tor_->set_l2_route(host->mac(), tor_port);
    if (config.install_rnics) {
      host->install_rnic(config.nic, host_port);
    }
    hosts_.push_back(std::move(host));
  }

  tor_->setup();

  controller_ = std::make_unique<ChannelController>(SwitchIdentity{
      net::MacAddress::from_index(0), net::Ipv4Address::from_index(0)});
}

}  // namespace xmem::control
