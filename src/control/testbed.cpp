#include "control/testbed.hpp"

#include <stdexcept>

#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"

namespace xmem::control {

Testbed::Testbed(Config config) {
  tor_ = std::make_unique<switchsim::ProgrammableSwitch>(
      sim_, "tor", config.switch_config);

  auto attach = [&](const std::string& name, std::uint16_t addr_index,
                    bool with_rnic) {
    auto host = std::make_unique<host::Host>(
        sim_, name, net::MacAddress::from_index(addr_index),
        net::Ipv4Address::from_index(addr_index));
    int tor_port = -1;
    int host_port = -1;
    links_.push_back(topo::connect(sim_, *tor_, *host, config.link_rate,
                                   config.link_propagation, &tor_port,
                                   &host_port));
    tor_ports_.push_back(tor_port);
    tor_->set_l2_route(host->mac(), tor_port);
    if (with_rnic) {
      host->install_rnic(config.nic, host_port);
    }
    hosts_.push_back(std::move(host));
  };

  // Host names are built with append() rather than operator+: GCC 12's
  // inlined char_traits path trips a spurious -Wrestrict on the latter.
  for (int i = 0; i < config.hosts; ++i) {
    std::string name("h");
    name.append(std::to_string(i));
    attach(name, static_cast<std::uint16_t>(i + 1), config.install_rnics);
  }
  // Memory servers sit under the same ToR, after the regular hosts.
  // They exist to serve RDMA, so they always get an RNIC.
  memory_servers_ = config.memory_servers;
  first_memory_host_ = config.hosts;
  for (int i = 0; i < config.memory_servers; ++i) {
    std::string name("m");
    name.append(std::to_string(i));
    attach(name, static_cast<std::uint16_t>(config.hosts + i + 1),
           /*with_rnic=*/true);
  }

  tor_->setup();

  controller_ = std::make_unique<ChannelController>(SwitchIdentity{
      net::MacAddress::from_index(0), net::Ipv4Address::from_index(0)});
}

std::vector<ChannelController::PoolTarget> Testbed::memory_pool() {
  std::vector<ChannelController::PoolTarget> targets;
  targets.reserve(static_cast<std::size_t>(memory_servers_));
  for (int i = 0; i < memory_servers_; ++i) {
    targets.push_back({&memory_server(i), memory_server_port(i)});
  }
  return targets;
}

std::vector<RdmaChannelConfig> Testbed::setup_memory_pool(
    const ChannelController::ChannelSpec& spec) {
  if (memory_servers_ == 0) {
    throw std::invalid_argument(
        "setup_memory_pool: testbed has no memory servers "
        "(set Config::memory_servers)");
  }
  const auto targets = memory_pool();
  return controller_->setup_pool(targets, spec);
}

void Testbed::enable_int() {
  tor_->enable_int(1);
  // Memory-server links are infrastructure: they carry only the RDMA
  // fabric, which is deliberately unmonitored (the switch's own counters
  // cover it), so they are not INT sources and their frames never pay
  // the filter.
  const std::size_t tenant_links =
      static_cast<std::size_t>(first_memory_host_);
  for (std::size_t i = 0; i < tenant_links && i < links_.size(); ++i) {
    links_[i]->enable_int(static_cast<std::uint16_t>(10 + i));
    // Monitor tenant traffic, not the memory fabric: frames to the
    // RoCEv2 port never start a stack, so the primitives' F&A round
    // trips stay allocation-free. RNIC INT (hop 100+i, the response
    // path's source) stays an explicit per-host opt-in for the same
    // reason — call host(i).rnic().enable_int() to trace RDMA service
    // time. The predicate runs once per untagged frame per link, so it
    // peeks at fixed offsets rather than paying extract_five_tuple().
    links_[i]->set_int_filter([](const net::Packet& packet) {
      constexpr std::size_t kL4 =
          net::kEthernetHeaderBytes + net::kIpv4HeaderBytes;
      const auto b = packet.bytes();
      if (b.size() < kL4 + 4) return true;               // runt: no RoCE
      if (b[12] != 0x08 || b[13] != 0x00) return true;   // non-IPv4
      if (b[net::kEthernetHeaderBytes + 9] !=
          static_cast<std::uint8_t>(net::IpProto::kUdp)) {
        return true;
      }
      const auto dst_port = static_cast<std::uint16_t>(
          (static_cast<std::uint16_t>(b[kL4 + 2]) << 8) | b[kL4 + 3]);
      return dst_port != net::kRoceV2Port;
    });
  }
}

}  // namespace xmem::control
