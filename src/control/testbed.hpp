// The paper's testbed in a box: one programmable ToR switch with N
// servers attached over equal links (the §5 setup is N=3: two traffic
// endpoints plus one memory server). Every bench, example and
// integration test builds on this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/channel_controller.hpp"
#include "host/host.hpp"
#include "switchsim/switch.hpp"
#include "topo/link.hpp"

namespace xmem::control {

class Testbed {
 public:
  struct Config {
    int hosts = 3;
    /// Dedicated memory servers attached under the ToR after the regular
    /// hosts, one link each, RNICs always installed — the scale-out
    /// topology a sharded ChannelSet runs against. Reachable through
    /// memory_server(i) / setup_memory_pool().
    int memory_servers = 0;
    sim::Bandwidth link_rate = sim::gbps(40);
    /// One-way propagation incl. PHY/serdes latency.
    sim::Time link_propagation = sim::nanoseconds(150);
    rnic::NicProfile nic;
    switchsim::ProgrammableSwitch::Config switch_config;
    bool install_rnics = true;
  };

  explicit Testbed(Config config);
  Testbed() : Testbed(Config{}) {}

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] switchsim::ProgrammableSwitch& tor() { return *tor_; }
  [[nodiscard]] host::Host& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int host_count() const { return static_cast<int>(hosts_.size()); }
  /// Switch port index that reaches host `i`.
  [[nodiscard]] int port_of(int i) const {
    return tor_ports_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] topo::Link& link_of(int i) {
    return *links_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] ChannelController& controller() { return *controller_; }
  [[nodiscard]] const SwitchIdentity& switch_identity() const {
    return controller_->switch_identity();
  }

  /// --- Memory-server pool (Config::memory_servers) --------------------
  [[nodiscard]] int memory_server_count() const { return memory_servers_; }
  /// The i-th memory server (i in [0, memory_server_count())).
  [[nodiscard]] host::Host& memory_server(int i) {
    return host(first_memory_host_ + i);
  }
  [[nodiscard]] int memory_server_port(int i) const {
    return port_of(first_memory_host_ + i);
  }
  [[nodiscard]] topo::Link& memory_server_link(int i) {
    return link_of(first_memory_host_ + i);
  }
  /// PoolTargets covering every attached memory server, in shard order.
  [[nodiscard]] std::vector<ChannelController::PoolTarget> memory_pool();
  /// One-call pool provisioning across all attached memory servers.
  std::vector<RdmaChannelConfig> setup_memory_pool(
      const ChannelController::ChannelSpec& spec);

  /// Turn on INT for tenant traffic: every tenant host link becomes a
  /// source (hop 10+i) that skips RoCEv2 frames, and the ToR TM (hop 1)
  /// appends in transit. Memory-server links are infrastructure and stay
  /// unmonitored entirely. RNIC INT is per-host opt-in (hop convention
  /// 100+i). Hop ids are stable across runs so per-hop histograms and
  /// reports line up.
  void enable_int();

 private:
  sim::Simulator sim_;
  std::unique_ptr<switchsim::ProgrammableSwitch> tor_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::vector<std::unique_ptr<topo::Link>> links_;
  std::vector<int> tor_ports_;
  std::unique_ptr<ChannelController> controller_;
  int memory_servers_ = 0;
  int first_memory_host_ = 0;
};

}  // namespace xmem::control
