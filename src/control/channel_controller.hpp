// The RDMA channel controller (§3): the only CPU-involved piece of the
// architecture. It allocates and registers memory regions on the server,
// creates and connects a queue pair on the server RNIC, and produces the
// RdmaChannelConfig that is pushed into switch data-plane state.
//
// After setup_channel() returns, the data path runs with zero server or
// switch CPU involvement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "control/channel.hpp"
#include "host/host.hpp"
#include "rnic/memory.hpp"

namespace xmem::control {

class ChannelController {
 public:
  explicit ChannelController(SwitchIdentity switch_identity)
      : switch_identity_(switch_identity) {}

  struct ChannelSpec {
    std::size_t region_bytes = 1 << 20;
    rnic::Access access = rnic::Access::kAll;
    roce::Psn initial_psn;
    /// Best-effort channels (the paper's default) survive lost requests;
    /// strict RC sequencing is what the reliability extension needs.
    bool tolerate_psn_gaps = true;
  };

  /// Set up one channel to `server` (which must have an RNIC), reachable
  /// from the switch through `switch_port`.
  RdmaChannelConfig setup_channel(host::Host& server, int switch_port,
                                  const ChannelSpec& spec);

  /// One memory server in a sharded pool.
  struct PoolTarget {
    host::Host* server = nullptr;
    int switch_port = -1;
  };

  /// Provision one channel per server, all with the same spec, in one
  /// call — the control-plane step that stands up a core::ChannelSet.
  /// The i-th returned config is shard i; every region is equally sized,
  /// which the sharded primitives require. Throws std::invalid_argument
  /// on an empty pool or a server without an RNIC.
  std::vector<RdmaChannelConfig> setup_pool(
      std::span<const PoolTarget> servers, const ChannelSpec& spec);

  /// Recovery path: rebuild a channel against a server whose RNIC has
  /// been restart()ed (QPs gone, rkeys invalidated, DRAM intact). The
  /// region identified by `old.rkey` is re-registered under a fresh rkey
  /// — same bytes, same base VA — a fresh server QP is created and
  /// connected, and a fresh switch QPN + UDP source port are allocated
  /// so stale pre-crash responses can never match the new channel.
  /// `spec.initial_psn` should be the requester's current next_psn so
  /// in-flight reposts land as duplicates rather than as PSN gaps.
  RdmaChannelConfig reconnect(host::Host& server,
                              const RdmaChannelConfig& old,
                              const ChannelSpec& spec);

  /// Control-plane (initialization-time) access to a region's bytes on
  /// the server — used to pre-populate remote lookup tables and to read
  /// back counters for verification.
  static std::span<std::uint8_t> region_bytes(host::Host& server,
                                              const RdmaChannelConfig& config);

  [[nodiscard]] const SwitchIdentity& switch_identity() const {
    return switch_identity_;
  }

 private:
  SwitchIdentity switch_identity_;
  /// Switch-side QPNs are allocated from a private space so several
  /// primitives on one switch never collide.
  std::uint32_t next_switch_qpn_ = 0x200;
  std::uint16_t next_udp_port_ = 0xd000;
};

}  // namespace xmem::control
