// The programmable switch: parser -> ingress stages -> traffic manager ->
// egress stages -> port transmit, plus the packet operations
// (inject / clone / truncate / recirculate) the remote-memory primitives
// are built from.
//
// This is a behavioural Tofino-class model: stages execute in order with
// a fixed pipeline latency budget rather than cycle-accurate timing; see
// DESIGN.md §6.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "switchsim/pipeline.hpp"
#include "switchsim/table.hpp"
#include "switchsim/traffic_manager.hpp"
#include "topo/node.hpp"

namespace xmem::switchsim {

class ProgrammableSwitch : public topo::Node {
 public:
  struct Config {
    /// Parser + ingress + deparser + egress latency, applied between
    /// frame arrival and traffic-manager enqueue.
    sim::Time pipeline_latency = sim::nanoseconds(700);
    /// Delay for a recirculated packet to re-enter ingress.
    sim::Time recirculate_latency = sim::nanoseconds(400);
    TrafficManager::Config tm;
  };

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t stage_drops = 0;
    std::uint64_t consumed = 0;
    std::uint64_t no_route_drops = 0;
    std::uint64_t buffer_drops = 0;
    std::uint64_t injected = 0;
    std::uint64_t recirculated = 0;
    std::uint64_t pfc_xoff_sent = 0;
    std::uint64_t pfc_xon_sent = 0;
  };

  ProgrammableSwitch(sim::Simulator& simulator, std::string name,
                     Config config);

  /// Must be called once after all links are attached: sizes the traffic
  /// manager and wires port service callbacks.
  void setup();
  [[nodiscard]] bool ready() const { return tm_ != nullptr; }

  /// --- Pipeline programming ------------------------------------------
  void add_ingress_stage(std::string name,
                         std::function<void(PipelineContext&)> fn);
  void add_egress_stage(std::string name,
                        std::function<void(PipelineContext&)> fn);

  /// Built-in L2 forwarding, consulted when no stage picked a port.
  void set_l2_route(const net::MacAddress& mac, int port);

  /// Turn on shared-buffer PFC (§2.1's incumbent fix): when buffer usage
  /// crosses `xoff_bytes` the switch XOFFs every port; once it drains to
  /// `xon_bytes` it XONs them. Call after setup(). `priority_class`
  /// (0..7) selects the 802.1Qbb class the pause targets — put RoCE on
  /// its own class so DCQCN's lossless backstop does not pause unrelated
  /// tenants. Note the inherent head-of-line blocking either way: the
  /// port MAC model pauses the whole transmitter, victims included — the
  /// behaviour bench/a4 quantifies and Port::hol_blocked_packets()
  /// counts.
  void enable_pfc(std::int64_t xoff_bytes, std::int64_t xon_bytes,
                  int priority_class = 0);
  [[nodiscard]] bool pfc_paused() const { return pfc_paused_; }

  /// Tag every dequeued frame with an INT hop record covering its
  /// traffic-manager residency (ingress = TM enqueue, egress = dequeue)
  /// and the egress queue depth in bytes left behind it.
  void enable_int(std::uint16_t hop_id) {
    int_enabled_ = true;
    int_hop_id_ = hop_id;
  }
  void disable_int() { int_enabled_ = false; }
  [[nodiscard]] bool int_enabled() const { return int_enabled_; }

  /// Where the built-in L2 table would send this frame (stages use this
  /// to learn a packet's destination before deciding to divert it).
  [[nodiscard]] std::optional<int> l2_route_for(const net::Packet& p) const;

  /// --- Packet operations for primitives ------------------------------
  /// Enqueue a pipeline-crafted packet for egress on `port`.
  void inject(net::Packet&& packet, int port);
  /// Re-run ingress for `packet` after the recirculation delay; its
  /// ingress_port is kRecirculatePort.
  void recirculate(net::Packet&& packet);

  /// --- Introspection --------------------------------------------------
  [[nodiscard]] TrafficManager& tm() { return *tm_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Register every Stats field under `<prefix>/...` and delegate the
  /// traffic manager's per-port metrics to `<prefix>/tm/...`. Requires
  /// setup() to have run.
  void register_metrics(telemetry::MetricsRegistry& registry,
                        const std::string& prefix);

  // topo::Node
  void receive(net::Packet&& packet, int port) override;

 private:
  void run_ingress(PipelineContext ctx);
  void resolve_l2(PipelineContext& ctx);
  void enqueue_for_egress(net::Packet&& packet, int port);
  void service_port(int port);

  void pfc_broadcast(bool xoff);

  Config config_;
  std::vector<Stage> ingress_stages_;
  std::vector<Stage> egress_stages_;
  std::unordered_map<net::MacAddress, int> l2_routes_;
  std::unique_ptr<TrafficManager> tm_;
  bool int_enabled_ = false;
  std::uint16_t int_hop_id_ = 0;
  bool pfc_enabled_ = false;
  bool pfc_paused_ = false;
  std::int64_t pfc_xoff_bytes_ = 0;
  std::int64_t pfc_xon_bytes_ = 0;
  int pfc_class_ = 0;
  Stats stats_;
};

}  // namespace xmem::switchsim
