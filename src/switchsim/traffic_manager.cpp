#include "switchsim/traffic_manager.hpp"

#include <cassert>

namespace xmem::switchsim {

TrafficManager::TrafficManager(int port_count, Config config)
    : config_(config),
      queues_(static_cast<std::size_t>(port_count)),
      stats_(static_cast<std::size_t>(port_count)) {}

bool TrafficManager::enqueue(int port, net::Packet packet, sim::Time now) {
  assert(port >= 0 && static_cast<std::size_t>(port) < queues_.size());
  auto& q = queues_[static_cast<std::size_t>(port)];
  auto& st = stats_[static_cast<std::size_t>(port)];
  const auto size = static_cast<std::int64_t>(packet.size());

  if (used_ + size > config_.shared_buffer_bytes) {
    ++st.dropped;
    st.dropped_bytes += size;
    notify(QueueEvent::kDrop, port, q.bytes);
    return false;
  }

  if (config_.ecn_mark_threshold_bytes > 0 &&
      q.bytes >= config_.ecn_mark_threshold_bytes) {
    // DCTCP-style marking: set CE if the packet is ECN-capable.
    auto& bytes = packet.mutable_bytes();
    if (packet.size() >= net::kEthernetHeaderBytes + net::kIpv4HeaderBytes &&
        bytes[12] == 0x08 && bytes[13] == 0x00) {
      const std::size_t tos_at = net::kEthernetHeaderBytes + 1;
      if ((bytes[tos_at] & 0x3) != 0) {  // ECT(0), ECT(1) or already CE
        bytes[tos_at] |= 0x3;
        // Refresh the IPv4 checksum via the rewrite helper path.
        net::rewrite_dscp(packet, static_cast<std::uint8_t>(bytes[tos_at] >> 2));
      }
    }
  }

  packet.meta().enqueued = now;
  q.packets.push_back(std::move(packet));
  q.bytes += size;
  used_ += size;
  ++st.enqueued;
  if (q.bytes > st.max_depth_bytes) st.max_depth_bytes = q.bytes;
  notify(QueueEvent::kEnqueue, port, q.bytes);
  return true;
}

std::optional<net::Packet> TrafficManager::dequeue(int port) {
  assert(port >= 0 && static_cast<std::size_t>(port) < queues_.size());
  auto& q = queues_[static_cast<std::size_t>(port)];
  if (q.packets.empty()) return std::nullopt;

  net::Packet packet = std::move(q.packets.front());
  q.packets.pop_front();
  const auto size = static_cast<std::int64_t>(packet.size());
  q.bytes -= size;
  used_ -= size;
  ++stats_[static_cast<std::size_t>(port)].dequeued;
  notify(QueueEvent::kDequeue, port, q.bytes);
  return packet;
}

std::uint64_t TrafficManager::total_drops() const {
  std::uint64_t n = 0;
  for (const auto& st : stats_) n += st.dropped;
  return n;
}

}  // namespace xmem::switchsim
