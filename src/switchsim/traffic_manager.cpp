#include "switchsim/traffic_manager.hpp"

#include <cassert>
#include <stdexcept>

namespace xmem::switchsim {

TrafficManager::TrafficManager(int port_count, Config config)
    : config_(config),
      queues_(static_cast<std::size_t>(port_count)),
      stats_(static_cast<std::size_t>(port_count)) {
  if (config_.shared_buffer_bytes <= 0) {
    throw std::invalid_argument("TrafficManager: shared_buffer_bytes must be positive");
  }
  if (config_.ecn_mark_threshold_bytes < 0) {
    throw std::invalid_argument(
        "TrafficManager: ecn_mark_threshold_bytes must be >= 0 (0 disables marking)");
  }
}

bool TrafficManager::enqueue(int port, net::Packet&& packet, sim::Time now) {
  assert(port >= 0 && static_cast<std::size_t>(port) < queues_.size());
  auto& q = queues_[static_cast<std::size_t>(port)];
  auto& st = stats_[static_cast<std::size_t>(port)];
  const auto size = static_cast<std::int64_t>(packet.size());

  if (used_ + size > config_.shared_buffer_bytes) {
    ++st.dropped;
    st.dropped_bytes += size;
    notify(QueueEvent::kDrop, port, q.bytes);
    return false;
  }

  if (config_.ecn_mark_threshold_bytes > 0 &&
      q.bytes >= config_.ecn_mark_threshold_bytes) {
    // DCTCP-style marking: set CE if the packet is ECN-capable.
    const auto bytes = packet.mutable_bytes();
    if (packet.size() >= net::kEthernetHeaderBytes + net::kIpv4HeaderBytes &&
        bytes[12] == 0x08 && bytes[13] == 0x00) {
      const std::size_t tos_at = net::kEthernetHeaderBytes + 1;
      if ((bytes[tos_at] & 0x3) != 0) {  // ECT(0), ECT(1) or already CE
        bytes[tos_at] |= 0x3;
        // Refresh the IPv4 checksum via the rewrite helper path.
        net::rewrite_dscp(packet, static_cast<std::uint8_t>(bytes[tos_at] >> 2));
      }
    }
  }

  packet.meta().enqueued = now;
  q.packets.push_back(std::move(packet));
  q.bytes += size;
  used_ += size;
  ++st.enqueued;
  if (q.bytes > st.max_depth_bytes) st.max_depth_bytes = q.bytes;
  notify(QueueEvent::kEnqueue, port, q.bytes);
  return true;
}

std::optional<net::Packet> TrafficManager::dequeue(int port) {
  assert(port >= 0 && static_cast<std::size_t>(port) < queues_.size());
  auto& q = queues_[static_cast<std::size_t>(port)];
  if (q.packets.empty()) return std::nullopt;

  net::Packet packet = std::move(q.packets.front());
  q.packets.pop_front();
  const auto size = static_cast<std::int64_t>(packet.size());
  q.bytes -= size;
  used_ -= size;
  ++stats_[static_cast<std::size_t>(port)].dequeued;
  notify(QueueEvent::kDequeue, port, q.bytes);
  return packet;
}

std::uint64_t TrafficManager::total_drops() const {
  std::uint64_t n = 0;
  for (const auto& st : stats_) n += st.dropped;
  return n;
}

void TrafficManager::register_metrics(telemetry::MetricsRegistry& registry,
                                      const std::string& prefix) {
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    const std::string port = prefix + "/port" + std::to_string(i);
    const PortStats* st = &stats_[i];
    registry.register_counter(
        port + "/enqueued",
        [st]() { return static_cast<std::int64_t>(st->enqueued); },
        "packets");
    registry.register_counter(
        port + "/dequeued",
        [st]() { return static_cast<std::int64_t>(st->dequeued); },
        "packets");
    registry.register_counter(
        port + "/dropped",
        [st]() { return static_cast<std::int64_t>(st->dropped); }, "packets");
    registry.register_counter(
        port + "/dropped_bytes", [st]() { return st->dropped_bytes; },
        "bytes");
    registry.register_counter(
        port + "/max_depth_bytes", [st]() { return st->max_depth_bytes; },
        "bytes");
    const PortQueue* q = &queues_[i];
    registry.register_gauge(
        port + "/queue_depth_bytes",
        [q]() { return static_cast<double>(q->bytes); }, "bytes");
    registry.register_gauge(
        port + "/queue_depth_packets",
        [q]() { return static_cast<double>(q->packets.size()); }, "packets");
  }
  registry.register_gauge(
      prefix + "/buffer_used_bytes",
      [this]() { return static_cast<double>(used_); }, "bytes");
}

}  // namespace xmem::switchsim
