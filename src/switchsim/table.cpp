#include "switchsim/table.hpp"

#include <algorithm>

#include "net/flow.hpp"

namespace xmem::switchsim {

std::size_t ExactMatchTable::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(net::fnv1a(k));
}

bool ExactMatchTable::insert(Key key, Action action) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = action;  // update in place never consumes capacity
    return true;
  }
  if (entries_.size() >= capacity_) return false;
  entries_.emplace(std::move(key), action);
  return true;
}

const Action* ExactMatchTable::lookup(
    std::span<const std::uint8_t> key) const {
  // Transparent lookup without allocating would need heterogeneous keys;
  // a small copy is fine at simulation rates.
  const Key k(key.begin(), key.end());
  auto it = entries_.find(k);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

bool ExactMatchTable::erase(std::span<const std::uint8_t> key) {
  const Key k(key.begin(), key.end());
  return entries_.erase(k) > 0;
}

void LpmTable::insert(std::uint32_t prefix, int prefix_len, Action action) {
  const std::uint32_t mask =
      prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  by_length_[prefix_len][prefix & mask] = action;
}

const Action* LpmTable::lookup(std::uint32_t key) const {
  for (const auto& [len, table] : by_length_) {
    const std::uint32_t mask =
        len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
    auto it = table.find(key & mask);
    if (it != table.end()) return &it->second;
  }
  return nullptr;
}

std::size_t LpmTable::size() const {
  std::size_t n = 0;
  for (const auto& [len, table] : by_length_) n += table.size();
  return n;
}

bool TernaryTable::insert(Key value, Key mask, int priority, Action action) {
  if (entries_.size() >= capacity_) return false;
  if (value.size() != mask.size()) return false;
  Entry e{std::move(value), std::move(mask), priority, action};
  auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), e,
      [](const Entry& a, const Entry& b) { return a.priority > b.priority; });
  entries_.insert(pos, std::move(e));
  return true;
}

const Action* TernaryTable::lookup(std::span<const std::uint8_t> key) const {
  for (const auto& e : entries_) {
    if (e.value.size() != key.size()) continue;
    bool match = true;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if ((key[i] & e.mask[i]) != (e.value[i] & e.mask[i])) {
        match = false;
        break;
      }
    }
    if (match) return &e.action;
  }
  return nullptr;
}

}  // namespace xmem::switchsim
