// Stateful register arrays, the P4 construct the primitives keep their
// data-plane state in (ring-buffer pointers, outstanding-op counters,
// accumulators). Bounds-checked; sized like switch SRAM would be.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace xmem::switchsim {

template <typename T>
class RegisterArray {
 public:
  explicit RegisterArray(std::size_t size, T initial = T{})
      : cells_(size, initial) {}

  [[nodiscard]] T read(std::size_t index) const {
    check(index);
    return cells_[index];
  }

  void write(std::size_t index, T value) {
    check(index);
    cells_[index] = value;
  }

  /// Read-modify-write, the single-stage P4 register pattern.
  template <typename F>
  T update(std::size_t index, F&& f) {
    check(index);
    cells_[index] = f(cells_[index]);
    return cells_[index];
  }

  [[nodiscard]] std::size_t size() const { return cells_.size(); }

 private:
  void check(std::size_t index) const {
    if (index >= cells_.size()) {
      throw std::out_of_range("RegisterArray: index out of range");
    }
  }
  std::vector<T> cells_;
};

}  // namespace xmem::switchsim
