// Traffic manager: the shared packet buffer and per-port egress queues.
//
// This is where the paper's problem lives — a ToR-class shared buffer of
// ~12 MB that a 50 MB incast overruns in 0.34 ms — and where the packet
// buffer primitive hooks in, watching queue depth to decide when to
// divert packets to remote DRAM and when to pull them back.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace xmem::switchsim {

enum class QueueEvent : std::uint8_t {
  kEnqueue,
  kDequeue,
  kDrop,
};

class TrafficManager {
 public:
  struct Config {
    std::int64_t shared_buffer_bytes = 12 * 1000 * 1000;  // paper's 12 MB
    /// ECN: mark CE on enqueue when the queue exceeds this (0 disables;
    /// negative rejected at construction). One threshold serves every
    /// ECN-capable flow through the queue — DCTCP tenants and RoCEv2
    /// memory traffic alike — so a CE-marked RDMA request triggers the
    /// server RNIC's CNP path exactly when a DCTCP sender sharing the
    /// port would see marks (DCQCN's Kmin==Kmax simplification).
    std::int64_t ecn_mark_threshold_bytes = 0;
  };

  /// Called after queue state changes on a port; depth is post-event.
  using QueueWatcher =
      std::function<void(QueueEvent, int port, std::int64_t depth_bytes)>;

  /// Throws std::invalid_argument on a non-positive buffer size or a
  /// negative ECN threshold (a silent negative would disable marking
  /// while looking configured).
  TrafficManager(int port_count, Config config);

  /// Enqueue for egress on `port`; returns false (drop) when the shared
  /// buffer is exhausted.
  bool enqueue(int port, net::Packet&& packet, sim::Time now);

  /// Pop the head-of-line packet for `port` (nullopt if empty).
  std::optional<net::Packet> dequeue(int port);

  [[nodiscard]] std::int64_t depth_bytes(int port) const {
    return queues_[static_cast<std::size_t>(port)].bytes;
  }
  [[nodiscard]] std::size_t depth_packets(int port) const {
    return queues_[static_cast<std::size_t>(port)].packets.size();
  }
  [[nodiscard]] std::int64_t buffer_used() const { return used_; }
  [[nodiscard]] std::int64_t buffer_capacity() const {
    return config_.shared_buffer_bytes;
  }

  /// Observe queue transitions (the packet-buffer primitive's trigger).
  /// Multiple watchers are invoked in registration order.
  void add_watcher(QueueWatcher watcher) {
    watchers_.push_back(std::move(watcher));
  }

  struct PortStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t dropped = 0;
    std::int64_t dropped_bytes = 0;
    std::int64_t max_depth_bytes = 0;
  };
  [[nodiscard]] const PortStats& port_stats(int port) const {
    return stats_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] std::uint64_t total_drops() const;

  /// Register per-port PortStats counters and live queue-depth gauges as
  /// `<prefix>/port<i>/...`, plus `<prefix>/buffer_used_bytes`.
  void register_metrics(telemetry::MetricsRegistry& registry,
                        const std::string& prefix);

 private:
  struct PortQueue {
    std::deque<net::Packet> packets;
    std::int64_t bytes = 0;
  };

  void notify(QueueEvent event, int port, std::int64_t depth) {
    for (auto& w : watchers_) w(event, port, depth);
  }

  Config config_;
  std::vector<PortQueue> queues_;
  std::vector<PortStats> stats_;
  std::int64_t used_ = 0;
  std::vector<QueueWatcher> watchers_;
};

}  // namespace xmem::switchsim
