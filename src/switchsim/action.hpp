// Match-action table actions.
//
// Actions are the unit both the local SRAM tables and the *remote* lookup
// table traffic in serialized form, so the layout is fixed at 16 bytes —
// the entry size the lookup-table primitive's RETH lengths are computed
// from.
#pragma once

#include <cstdint>
#include <span>

#include "net/address.hpp"
#include "net/bytes.hpp"

namespace xmem::switchsim {

struct Action {
  enum class Kind : std::uint8_t {
    kNone = 0,         ///< No-op (missing entry).
    kForward = 1,      ///< Send out `port`.
    kSetDscp = 2,      ///< Rewrite DSCP to `dscp`, then forward out `port`.
    kRewriteDst = 3,   ///< Rewrite dst MAC+IP (virtual->physical), forward.
    kDrop = 4,
  };

  Kind kind = Kind::kNone;
  std::uint8_t dscp = 0;
  std::uint16_t port = 0;
  net::MacAddress new_dst_mac;
  net::Ipv4Address new_dst_ip;

  bool operator==(const Action&) const = default;

  /// Serialized size on the wire / in remote memory.
  static constexpr std::size_t kSerializedBytes = 16;

  void serialize(net::ByteWriter& w) const {
    w.u8(static_cast<std::uint8_t>(kind));
    w.u8(dscp);
    w.u16(port);
    w.bytes(new_dst_mac.octets());
    w.u32(new_dst_ip.value());
    w.u16(0);  // pad to 16
  }

  static Action parse(net::ByteReader& r) {
    Action a;
    a.kind = static_cast<Kind>(r.u8());
    a.dscp = r.u8();
    a.port = r.u16();
    std::array<std::uint8_t, 6> mac{};
    auto m = r.bytes(6);
    std::copy(m.begin(), m.end(), mac.begin());
    a.new_dst_mac = net::MacAddress(mac);
    a.new_dst_ip = net::Ipv4Address(r.u32());
    r.u16();  // pad
    return a;
  }
};

}  // namespace xmem::switchsim
