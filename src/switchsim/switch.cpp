#include "switchsim/switch.hpp"

#include <cassert>

#include "net/bytes.hpp"
#include "net/pause.hpp"
#include "sim/log.hpp"

namespace xmem::switchsim {

ProgrammableSwitch::ProgrammableSwitch(sim::Simulator& simulator,
                                       std::string name, Config config)
    : topo::Node(simulator, std::move(name)), config_(config) {}

void ProgrammableSwitch::setup() {
  assert(tm_ == nullptr && "setup() called twice");
  tm_ = std::make_unique<TrafficManager>(port_count(), config_.tm);
  for (int p = 0; p < port_count(); ++p) {
    port(p).set_idle_callback([this, p]() { service_port(p); });
  }
}

void ProgrammableSwitch::register_metrics(telemetry::MetricsRegistry& registry,
                                          const std::string& prefix) {
  assert(ready() && "register_metrics before setup()");
  auto counter = [&](const char* field, const std::uint64_t* value,
                     const char* unit) {
    registry.register_counter(
        prefix + "/" + field,
        [value]() { return static_cast<std::int64_t>(*value); }, unit);
  };
  counter("received", &stats_.received, "packets");
  counter("parse_errors", &stats_.parse_errors, "packets");
  counter("forwarded", &stats_.forwarded, "packets");
  counter("stage_drops", &stats_.stage_drops, "packets");
  counter("consumed", &stats_.consumed, "packets");
  counter("no_route_drops", &stats_.no_route_drops, "packets");
  counter("buffer_drops", &stats_.buffer_drops, "packets");
  counter("injected", &stats_.injected, "packets");
  counter("recirculated", &stats_.recirculated, "packets");
  counter("pfc_xoff_sent", &stats_.pfc_xoff_sent, "frames");
  counter("pfc_xon_sent", &stats_.pfc_xon_sent, "frames");
  tm_->register_metrics(registry, prefix + "/tm");
}

void ProgrammableSwitch::add_ingress_stage(
    std::string name, std::function<void(PipelineContext&)> fn) {
  ingress_stages_.push_back(Stage{std::move(name), std::move(fn)});
}

void ProgrammableSwitch::add_egress_stage(
    std::string name, std::function<void(PipelineContext&)> fn) {
  egress_stages_.push_back(Stage{std::move(name), std::move(fn)});
}

void ProgrammableSwitch::set_l2_route(const net::MacAddress& mac, int port) {
  l2_routes_[mac] = port;
}

void ProgrammableSwitch::enable_pfc(std::int64_t xoff_bytes,
                                    std::int64_t xon_bytes,
                                    int priority_class) {
  assert(ready() && "enable_pfc before setup()");
  assert(xon_bytes < xoff_bytes);
  assert(priority_class >= 0 && priority_class < 8);
  pfc_enabled_ = true;
  pfc_xoff_bytes_ = xoff_bytes;
  pfc_xon_bytes_ = xon_bytes;
  pfc_class_ = priority_class;
  tm_->add_watcher([this](QueueEvent event, int, std::int64_t) {
    if (event == QueueEvent::kEnqueue && !pfc_paused_ &&
        tm_->buffer_used() >= pfc_xoff_bytes_) {
      pfc_paused_ = true;
      pfc_broadcast(/*xoff=*/true);
    } else if (event == QueueEvent::kDequeue && pfc_paused_ &&
               tm_->buffer_used() <= pfc_xon_bytes_) {
      pfc_paused_ = false;
      pfc_broadcast(/*xoff=*/false);
    }
  });
}

void ProgrammableSwitch::pfc_broadcast(bool xoff) {
  // MAC-control frames are emitted by the port MACs directly (they do
  // not traverse the traffic manager).
  const net::MacAddress self = net::MacAddress::from_index(0);
  const net::PfcFrame frame =
      xoff ? net::pfc_xoff(self, pfc_class_) : net::pfc_xon(self, pfc_class_);
  for (int p = 0; p < port_count(); ++p) {
    if (!port(p).connected()) continue;
    port(p).send(net::build_pfc_frame(frame));
  }
  if (xoff) {
    ++stats_.pfc_xoff_sent;
  } else {
    ++stats_.pfc_xon_sent;
  }
}

void ProgrammableSwitch::receive(net::Packet&& packet, int port) {
  assert(ready() && "ProgrammableSwitch::setup() was not called");
  ++stats_.received;
  PipelineContext ctx;
  ctx.packet = std::move(packet);
  ctx.ingress_port = port;
  sim_->schedule_in(config_.pipeline_latency,
                    [this, c = std::move(ctx)]() mutable {
                      c.now = sim_->now();
                      run_ingress(std::move(c));
                    });
}

void ProgrammableSwitch::recirculate(net::Packet&& packet) {
  assert(ready());
  ++stats_.recirculated;
  PipelineContext ctx;
  ctx.packet = std::move(packet);
  ctx.ingress_port = kRecirculatePort;
  sim_->schedule_in(config_.recirculate_latency,
                    [this, c = std::move(ctx)]() mutable {
                      c.now = sim_->now();
                      run_ingress(std::move(c));
                    });
}

void ProgrammableSwitch::run_ingress(PipelineContext ctx) {
  try {
    ctx.headers = net::parse_packet(ctx.packet);
  } catch (const net::BufferError&) {
    ++stats_.parse_errors;
    ctx.headers.reset();
  }

  for (const auto& stage : ingress_stages_) {
    stage.fn(ctx);
    if (ctx.finished()) break;
  }

  if (ctx.consumed()) {
    ++stats_.consumed;
    return;
  }
  if (ctx.dropped()) {
    ++stats_.stage_drops;
    return;
  }
  if (ctx.egress_port == kNoPort) resolve_l2(ctx);
  if (ctx.egress_port == kNoPort) {
    ++stats_.no_route_drops;
    return;
  }
  enqueue_for_egress(std::move(ctx.packet), ctx.egress_port);
}

void ProgrammableSwitch::resolve_l2(PipelineContext& ctx) {
  if (auto port = l2_route_for(ctx.packet)) ctx.egress_port = *port;
}

std::optional<int> ProgrammableSwitch::l2_route_for(
    const net::Packet& p) const {
  if (p.size() < 6) return std::nullopt;
  std::array<std::uint8_t, 6> dst{};
  const auto b = p.bytes();
  std::copy(b.begin(), b.begin() + 6, dst.begin());
  auto it = l2_routes_.find(net::MacAddress(dst));
  if (it == l2_routes_.end()) return std::nullopt;
  return it->second;
}

void ProgrammableSwitch::inject(net::Packet&& packet, int port) {
  assert(ready());
  ++stats_.injected;
  enqueue_for_egress(std::move(packet), port);
}

void ProgrammableSwitch::enqueue_for_egress(net::Packet&& packet, int port) {
  assert(port >= 0 && port < port_count());
  if (!tm_->enqueue(port, std::move(packet), sim_->now())) {
    ++stats_.buffer_drops;
    return;
  }
  if (this->port(port).idle()) service_port(port);
}

void ProgrammableSwitch::service_port(int port_index) {
  auto packet = tm_->dequeue(port_index);
  if (!packet) return;

  // Transit behavior: the switch appends its TM-residency hop only to
  // packets an upstream source already tagged — it never starts stacks,
  // so untagged (unmonitored) traffic pays nothing here.
  if (int_enabled_) {
    if (net::IntStack* stack = packet->meta().int_stack.get()) {
      net::IntHopRecord rec;
      rec.hop_id = int_hop_id_;
      rec.kind = static_cast<std::uint8_t>(net::IntHopKind::kTmQueue);
      rec.flags = net::IntHopRecord::kFlagDepthValid;
      rec.queue_depth =
          static_cast<std::uint32_t>(tm_->depth_bytes(port_index));
      rec.ingress_ns = net::int_timestamp_ns(packet->meta().enqueued);
      rec.egress_ns = net::int_timestamp_ns(sim_->now());
      stack->push(rec);
    }
  }

  if (!egress_stages_.empty()) {
    PipelineContext ctx;
    ctx.packet = std::move(*packet);
    ctx.egress_port = port_index;
    ctx.now = sim_->now();
    try {
      ctx.headers = net::parse_packet(ctx.packet);
    } catch (const net::BufferError&) {
      ctx.headers.reset();
    }
    for (const auto& stage : egress_stages_) {
      stage.fn(ctx);
      if (ctx.finished()) break;
    }
    if (ctx.finished()) {
      // Egress drop/consume: move on to the next queued packet.
      if (ctx.dropped()) ++stats_.stage_drops;
      if (ctx.consumed()) ++stats_.consumed;
      service_port(port_index);
      return;
    }
    packet = std::move(ctx.packet);
  }

  ++stats_.forwarded;
  port(port_index).send(std::move(*packet));
}

}  // namespace xmem::switchsim
