// Match-action tables: exact, longest-prefix and ternary matching, with
// capacity limits that model the scarce on-chip SRAM/TCAM the paper's
// whole premise revolves around.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "switchsim/action.hpp"

namespace xmem::switchsim {

using Key = std::vector<std::uint8_t>;

/// Exact-match table (hash table in switch SRAM).
class ExactMatchTable {
 public:
  /// `capacity` models the SRAM budget: inserts beyond it fail, which is
  /// precisely the condition that pushes traffic to the remote table.
  explicit ExactMatchTable(std::size_t capacity = SIZE_MAX)
      : capacity_(capacity) {}

  /// Returns false when the table is full (and does not insert).
  bool insert(Key key, Action action);

  /// Returns nullptr on miss.
  [[nodiscard]] const Action* lookup(std::span<const std::uint8_t> key) const;

  bool erase(std::span<const std::uint8_t> key);
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  std::unordered_map<Key, Action, KeyHash> entries_;
  std::size_t capacity_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

/// Longest-prefix-match table over 32-bit keys (IPv4 routing).
class LpmTable {
 public:
  void insert(std::uint32_t prefix, int prefix_len, Action action);
  [[nodiscard]] const Action* lookup(std::uint32_t key) const;
  [[nodiscard]] std::size_t size() const;

 private:
  // One exact-match map per prefix length, searched longest-first.
  std::map<int, std::unordered_map<std::uint32_t, Action>, std::greater<>>
      by_length_;
};

/// Ternary (value/mask + priority) table, i.e. TCAM.
class TernaryTable {
 public:
  explicit TernaryTable(std::size_t capacity = SIZE_MAX)
      : capacity_(capacity) {}

  /// Higher `priority` wins. Returns false when full.
  bool insert(Key value, Key mask, int priority, Action action);

  [[nodiscard]] const Action* lookup(std::span<const std::uint8_t> key) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Key value;
    Key mask;
    int priority;
    Action action;
  };
  std::vector<Entry> entries_;  // kept sorted by descending priority
  std::size_t capacity_;
};

}  // namespace xmem::switchsim
