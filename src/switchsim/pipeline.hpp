// The pipeline context handed to every match-action stage.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace xmem::switchsim {

inline constexpr int kNoPort = -1;
/// Marker ingress port for recirculated packets.
inline constexpr int kRecirculatePort = -2;

class ProgrammableSwitch;

struct PipelineContext {
  net::Packet packet;
  /// Parsed header view; nullopt when the parser rejected the frame.
  std::optional<net::ParsedPacket> headers;
  int ingress_port = kNoPort;
  int egress_port = kNoPort;
  sim::Time now = 0;

  /// Terminal verdicts a stage can issue.
  void drop() { drop_ = true; }
  /// The stage has taken ownership of the packet's fate (diverted it to
  /// remote memory, absorbed an RDMA response, ...). Skips forwarding
  /// without counting as a drop.
  void consume() { consumed_ = true; }

  [[nodiscard]] bool dropped() const { return drop_; }
  [[nodiscard]] bool consumed() const { return consumed_; }
  [[nodiscard]] bool finished() const { return drop_ || consumed_; }

 private:
  bool drop_ = false;
  bool consumed_ = false;
};

/// A pipeline stage: a named function over the context. Stages run in
/// registration order until one issues a terminal verdict.
struct Stage {
  std::string name;
  std::function<void(PipelineContext&)> fn;
};

}  // namespace xmem::switchsim
