// Example: surviving an incast with the remote packet buffer (§2.1).
//
// Four senders burst 8 MB at a single receiver behind a deliberately
// small 1.5 MB switch buffer. Run once without the primitive (watch the
// drops), once with it (lossless), printing a live queue-depth trace.
//
// With a trace path, the remote-buffer run records telemetry: one span
// per RDMA op plus queue/ring counter tracks, written as Chrome
// trace-event JSON — load it at https://ui.perfetto.dev.
//
//   $ ./example_incast_remote_buffer [--trace incast.json]
#include <cstdio>
#include <string>
#include <vector>

#include "control/testbed.hpp"
#include "core/packet_buffer.hpp"
#include "host/sink.hpp"
#include "host/traffic_gen.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/op_tracer.hpp"
#include "telemetry/sampler.hpp"

using namespace xmem;

namespace {

constexpr int kSenders = 4;
constexpr std::int64_t kBurstPerSender = 2 * sim::kMB;

void run(bool with_remote_buffer, const std::string& trace_path = "") {
  std::printf("\n--- %s ---\n", with_remote_buffer
                                    ? "WITH remote packet buffer (2 servers)"
                                    : "baseline drop-tail switch");
  control::Testbed::Config cfg;
  cfg.hosts = kSenders + 1 + 2;  // senders + receiver + 2 memory servers
  cfg.switch_config.tm.shared_buffer_bytes = 1'500'000;  // tiny: 1.5 MB
  control::Testbed tb(cfg);
  const int receiver = kSenders;

  std::unique_ptr<core::PacketBufferPrimitive> pb;
  if (with_remote_buffer) {
    std::vector<control::RdmaChannelConfig> stripes;
    for (int s = 0; s < 2; ++s) {
      const int host = kSenders + 1 + s;
      stripes.push_back(tb.controller().setup_channel(
          tb.host(host), tb.port_of(host),
          {.region_bytes = 16 * static_cast<std::size_t>(sim::kMiB)}));
    }
    pb = std::make_unique<core::PacketBufferPrimitive>(
        tb.tor(), stripes,
        core::PacketBufferPrimitive::Config{
            .watch_port = tb.port_of(receiver),
            .divert_threshold_bytes = 100 * 1500,
            .resume_threshold_bytes = 30 * 1500,
            .entry_bytes = 1536});
  }

  // Optional telemetry: registry for the final snapshot, tracer for the
  // op-span timeline, sampler for the depth counter tracks.
  telemetry::MetricsRegistry registry;
  telemetry::OpTracer tracer(tb.sim(), "incast");
  const bool tracing = !trace_path.empty();
  if (tracing) {
    tb.tor().register_metrics(registry, "switch0");
    if (pb) {
      pb->attach_telemetry(&registry, &tracer, "switch0/pktbuf");
    }
  }

  host::PacketSink sink(tb.host(receiver));
  std::vector<host::Host*> senders;
  for (int i = 0; i < kSenders; ++i) senders.push_back(&tb.host(i));
  host::IncastCoordinator incast(senders,
                                 {.dst_mac = tb.host(receiver).mac(),
                                  .dst_ip = tb.host(receiver).ip(),
                                  .frame_size = 1500,
                                  .burst_bytes_per_sender = kBurstPerSender,
                                  .sender_rate = sim::gbps(15)});
  incast.start(0);

  // Periodic queue/ring depth trace.
  std::function<void()> trace = [&]() {
    const double ms = sim::to_milliseconds(tb.sim().now());
    std::printf("t=%4.1f ms  switch queue %7lld B  ring %6lld entries  "
                "delivered %5llu  drops %llu\n",
                ms,
                static_cast<long long>(
                    tb.tor().tm().depth_bytes(tb.port_of(receiver))),
                static_cast<long long>(pb ? pb->ring_depth() : 0),
                static_cast<unsigned long long>(sink.packets()),
                static_cast<unsigned long long>(tb.tor().tm().total_drops()));
    const bool backlog =
        tb.tor().tm().depth_bytes(tb.port_of(receiver)) > 0 ||
        (pb && pb->ring_depth() > 0);
    if (!incast.all_finished() || backlog) {
      tb.sim().schedule_in(sim::microseconds(250), trace);
    }
  };
  tb.sim().schedule_at(sim::microseconds(100), trace);

  // Counter tracks mirroring the printed trace: egress-queue depth and
  // remote-ring depth, sampled until the incast settles.
  telemetry::Sampler sampler(
      tb.sim(), tracer,
      {.period = sim::microseconds(25), .until = [&]() {
         const bool backlog =
             tb.tor().tm().depth_bytes(tb.port_of(receiver)) > 0 ||
             (pb && pb->ring_depth() > 0);
         return !incast.all_finished() || backlog;
       }});
  if (tracing) {
    sampler.add_gauge(registry,
                      "switch0/tm/port" + std::to_string(tb.port_of(receiver)) +
                          "/queue_depth_bytes");
    if (pb) sampler.add_gauge(registry, "switch0/pktbuf/ring_depth");
    sampler.start();
  }

  tb.sim().run();

  const std::uint64_t sent = incast.total_packets_sent();
  std::printf("result: sent=%llu delivered=%llu dropped=%llu (%.1f%%)\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(sink.packets()),
              static_cast<unsigned long long>(sent - sink.packets()),
              100.0 * static_cast<double>(sent - sink.packets()) /
                  static_cast<double>(sent));
  if (pb) {
    std::printf("remote buffer: stored=%llu loaded=%llu max depth=%lld "
                "entries, reordering=0 guaranteed\n",
                static_cast<unsigned long long>(pb->stats().stored),
                static_cast<unsigned long long>(pb->stats().loaded),
                static_cast<long long>(pb->stats().max_ring_depth));
  }
  if (tracing) {
    if (tracer.write_chrome_trace(trace_path)) {
      std::printf("telemetry: %llu spans (%llu still open), %llu counter "
                  "samples -> %s (load in https://ui.perfetto.dev)\n",
                  static_cast<unsigned long long>(tracer.stats().spans_opened),
                  static_cast<unsigned long long>(tracer.open_spans()),
                  static_cast<unsigned long long>(
                      tracer.stats().counter_samples),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "telemetry: cannot write %s\n", trace_path.c_str());
    }
    const std::string metrics_path = trace_path + ".metrics.json";
    if (registry.write_json(metrics_path)) {
      std::printf("telemetry: metrics snapshot -> %s\n", metrics_path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") trace_path = argv[i + 1];
  }
  std::printf("Incast: %d senders x %lld MB burst into one 40 Gb/s port, "
              "1.5 MB switch buffer\n",
              kSenders, static_cast<long long>(kBurstPerSender / sim::kMB));
  run(false);
  run(true, trace_path);
  return 0;
}
