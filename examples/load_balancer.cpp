// Example: SilkRoad-style L4 load balancing with the connection table in
// remote memory (§2.2).
//
// New flows are assigned a backend with an atomic Compare-and-Swap that
// claims their slot in server DRAM; the assignment survives backend-pool
// changes (connection stickiness) and the server CPU never touches a
// packet.
//
//   $ ./example_load_balancer
#include <cstdio>

#include "apps/load_balancer.hpp"
#include "control/testbed.hpp"
#include "host/sink.hpp"
#include "host/traffic_gen.hpp"

using namespace xmem;

int main() {
  // h0 client; h1, h2 backends; h3 memory server.
  control::Testbed::Config cfg;
  cfg.hosts = 4;
  control::Testbed tb(cfg);

  const net::Ipv4Address vip(172, 16, 0, 100);
  auto channel = tb.controller().setup_channel(tb.host(3), tb.port_of(3),
                                               {.region_bytes = 1 << 20});
  apps::L4LoadBalancer lb(tb.tor(), channel,
                          apps::L4LoadBalancer::Config{.vip = vip});

  auto backend = [&](int host) {
    return apps::Backend{static_cast<std::uint16_t>(host), tb.host(host).mac(),
                         tb.host(host).ip(),
                         static_cast<std::uint16_t>(tb.port_of(host))};
  };
  lb.set_backends({backend(1), backend(2)});
  std::printf("VIP %s load-balanced over backends h1 and h2 "
              "(%llu connection slots in remote DRAM)\n",
              vip.to_string().c_str(),
              static_cast<unsigned long long>(lb.table_slots()));

  host::PacketSink sink1(tb.host(1));
  host::PacketSink sink2(tb.host(2));

  // 32 client flows, 8 packets each.
  for (std::uint16_t port = 6000; port < 6032; ++port) {
    host::CbrTrafficGen gen(tb.host(0),
                            {.dst_mac = net::MacAddress::from_index(0),
                             .dst_ip = vip,
                             .src_port = port,
                             .dst_port = 80,
                             .frame_size = 200,
                             .rate = sim::gbps(1),
                             .packet_limit = 8});
    gen.start();
    tb.sim().run();
  }

  std::printf("\nafter 32 flows x 8 packets:\n");
  std::printf("  backend h1 received %llu packets\n",
              static_cast<unsigned long long>(sink1.packets()));
  std::printf("  backend h2 received %llu packets\n",
              static_cast<unsigned long long>(sink2.packets()));
  std::printf("  new connections (CAS claims): %llu\n",
              static_cast<unsigned long long>(lb.stats().new_connections));
  std::printf("  local cache hits            : %llu\n",
              static_cast<unsigned long long>(lb.stats().cache_hits));

  // Drain h2 from the pool: established flows must stay where they are.
  std::printf("\nremoving backend h2 from the pool (existing flows stick) ...\n");
  lb.set_backends({backend(1)});
  host::CbrTrafficGen again(tb.host(0),
                            {.dst_mac = net::MacAddress::from_index(0),
                             .dst_ip = vip,
                             .src_port = 6000,  // an established flow
                             .dst_port = 80,
                             .frame_size = 200,
                             .rate = sim::gbps(1),
                             .packet_limit = 4});
  again.start();
  tb.sim().run();
  std::printf("  flow :6000 sent 4 more packets; h1 total now %llu, "
              "h2 total still %llu\n",
              static_cast<unsigned long long>(sink1.packets()),
              static_cast<unsigned long long>(sink2.packets()));
  std::printf("  memory-server CPU packets: %llu\n",
              static_cast<unsigned long long>(tb.host(3).cpu_packets()));
  return 0;
}
