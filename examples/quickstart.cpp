// Quickstart: the whole architecture in ~80 lines.
//
// Build the paper's testbed (a ToR switch + three 40 GbE servers with
// RNICs), let the control plane set up one RDMA channel to a memory
// server, and drive each of the three remote-memory verbs straight from
// the switch data plane: WRITE, READ, and atomic Fetch-and-Add.
//
//   $ ./example_quickstart
#include <cstdio>

#include "control/testbed.hpp"
#include "core/primitive.hpp"
#include "core/rdma_channel.hpp"

using namespace xmem;

int main() {
  // 1. The testbed: one programmable ToR, hosts h0/h1 as endpoints and
  //    h2 as the memory server, all on 40 Gb/s links.
  control::Testbed tb;
  std::printf("testbed: switch '%s' with %d hosts\n", tb.tor().name().c_str(),
              tb.host_count());

  // 2. Control plane (the only CPU involvement, ever): register 1 MiB of
  //    h2's DRAM, create a queue pair, hand {QPN, rkey, base VA} to the
  //    switch.
  control::RdmaChannelConfig config = tb.controller().setup_channel(
      tb.host(2), tb.port_of(2), {.region_bytes = 1 << 20});
  std::printf("channel: rkey=0x%x base_va=0x%llx qpn=%u -> switch port %d\n",
              config.rkey, static_cast<unsigned long long>(config.base_va),
              config.remote_qpn, config.switch_port);

  // 3. The data-plane channel object the primitives are built on. A tiny
  //    capture stage plays the role of a primitive's response handler.
  core::RdmaChannel channel(tb.tor(), config);
  tb.tor().add_ingress_stage("capture", [&](switchsim::PipelineContext& ctx) {
    if (auto msg = core::roce_view(ctx); msg && channel.owns(*msg)) {
      if (roce::is_read_response(msg->opcode())) {
        std::printf("  <- READ response, %zu bytes: \"%.*s\"\n",
                    msg->payload.size(), static_cast<int>(msg->payload.size()),
                    reinterpret_cast<const char*>(msg->payload.data()));
      } else if (msg->opcode() == roce::Opcode::kAtomicAcknowledge) {
        std::printf("  <- Atomic ACK, original counter value = %llu\n",
                    static_cast<unsigned long long>(
                        msg->atomic_ack->original_value));
      }
      ctx.consume();
    }
  });

  // 4. Switch-crafted RDMA WRITE: put a string into server DRAM.
  const char greeting[] = "hello, remote memory";
  tb.sim().schedule_at(0, [&] {
    std::printf("switch -> RDMA WRITE %zu bytes at base_va\n",
                sizeof(greeting) - 1);
    channel.post_write(
        config.base_va,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(greeting),
            sizeof(greeting) - 1));
  });

  // 5. Switch-crafted RDMA READ of the same bytes.
  tb.sim().schedule_at(sim::microseconds(10), [&] {
    std::printf("switch -> RDMA READ %zu bytes\n", sizeof(greeting) - 1);
    channel.post_read(config.base_va,
                      static_cast<std::uint32_t>(sizeof(greeting) - 1));
  });

  // 6. Two atomic Fetch-and-Adds on a counter at base_va + 1024.
  for (int i = 0; i < 2; ++i) {
    tb.sim().schedule_at(sim::microseconds(20 + 5 * i), [&] {
      std::printf("switch -> Fetch-and-Add(+7)\n");
      channel.post_fetch_add(config.base_va + 1024, 7);
    });
  }

  tb.sim().run();

  // 7. Verify through the control plane (reads the server's own DRAM).
  auto region = control::ChannelController::region_bytes(tb.host(2), config);
  std::printf("server DRAM now holds: \"%.*s\", counter=%llu\n",
              static_cast<int>(sizeof(greeting) - 1),
              reinterpret_cast<const char*>(region.data()),
              static_cast<unsigned long long>(
                  rnic::load_le64(region.subspan(1024, 8))));
  std::printf("server CPU packets handled: %llu (always zero)\n",
              static_cast<unsigned long long>(tb.host(2).cpu_packets()));
  return 0;
}
