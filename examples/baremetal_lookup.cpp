// Example: bare-metal hosting with a remote VIP table (§2.2).
//
// A tenant's "blackbox" server sends packets to virtual IPs. The ToR
// translates VIP -> physical address using the lookup-table primitive
// backed by server DRAM, with a small SRAM cache in front. No smartNIC,
// no software vswitch, no server CPU on the data path.
//
//   $ ./example_baremetal_lookup
#include <cstdio>

#include "apps/vip_table.hpp"
#include "control/testbed.hpp"
#include "core/lookup_table.hpp"
#include "host/sink.hpp"
#include "host/traffic_gen.hpp"

using namespace xmem;

int main() {
  // h0 = tenant blackbox, h1 = physical VM host, h2 = memory server.
  control::Testbed tb;

  // Control plane: one channel holding a 32Ki-entry VIP table.
  auto channel = tb.controller().setup_channel(
      tb.host(2), tb.port_of(2), {.region_bytes = 32768 * 192});
  core::LookupTablePrimitive lookup(tb.tor(), channel,
                                    {.entry_bytes = 192,
                                     .cache_capacity = 16,
                                     .key_fn = apps::vip_key_fn()});

  // Populate 1000 VIP mappings, all landing on physical host h1.
  std::vector<apps::VipMapping> mappings;
  for (int i = 0; i < 1000; ++i) {
    mappings.push_back(apps::VipMapping{
        net::Ipv4Address(172, 16, static_cast<std::uint8_t>(i >> 8),
                         static_cast<std::uint8_t>(i)),
        tb.host(1).ip(), tb.host(1).mac(),
        static_cast<std::uint16_t>(tb.port_of(1))});
  }
  const std::size_t installed = apps::populate_vip_region(
      control::ChannelController::region_bytes(tb.host(2), channel), 192,
      mappings, 0x9e3779b97f4a7c15ULL);
  std::printf("control plane installed %zu/1000 VIP mappings in remote DRAM\n",
              installed);

  // The physical host logs what it receives.
  host::PacketSink sink(tb.host(1));
  std::uint64_t translated = 0;
  sink.set_on_packet([&](const net::Packet& p) {
    auto parsed = net::parse_packet(p);
    if (++translated <= 3) {
      std::printf("  physical host got packet for %s (translated)\n",
                  parsed.ipv4->dst.to_string().c_str());
    }
  });

  // The tenant talks to three different VIPs, several packets each.
  host::CbrTrafficGen gen(tb.host(0),
                          {.dst_mac = net::MacAddress::from_index(0),  // ToR
                           .dst_ip = mappings[7].virtual_ip,
                           .frame_size = 128,
                           .rate = sim::mbps(500),
                           .packet_limit = 10});
  gen.start();
  tb.sim().run();

  host::CbrTrafficGen gen2(tb.host(0),
                           {.dst_mac = net::MacAddress::from_index(0),
                            .dst_ip = mappings[42].virtual_ip,
                            .frame_size = 128,
                            .rate = sim::mbps(500),
                            .packet_limit = 10});
  gen2.start();
  tb.sim().run();

  std::printf("\nlookup stats:\n");
  std::printf("  remote fetches : %llu (first packet of each flow)\n",
              static_cast<unsigned long long>(lookup.stats().remote_lookups));
  std::printf("  SRAM cache hits: %llu (every subsequent packet)\n",
              static_cast<unsigned long long>(lookup.stats().cache_hits));
  std::printf("  delivered      : %llu/20 packets\n",
              static_cast<unsigned long long>(sink.packets()));
  std::printf("  server CPU     : %llu packets (the point of the paper)\n",
              static_cast<unsigned long long>(tb.host(2).cpu_packets()));
  return 0;
}
