// Example: per-flow telemetry in remote memory (§2.3).
//
// The switch counts every packet of every flow with atomic Fetch-and-Add
// into server DRAM — exact counters plus a Count Sketch — then the
// "operator" (control plane) reads the server's memory and prints the
// heavy hitters. Zero server CPU on the data path.
//
//   $ ./example_telemetry_sketch
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/count_sketch.hpp"
#include "control/testbed.hpp"
#include "core/state_store.hpp"
#include "host/sink.hpp"
#include "host/traffic_gen.hpp"
#include "net/flow.hpp"

using namespace xmem;

int main() {
  control::Testbed tb;  // h0 -> h1 traffic, h2 memory server

  // Exact per-flow counters (one 8-byte slot per hashed flow).
  auto counters = tb.controller().setup_channel(tb.host(2), tb.port_of(2),
                                                {.region_bytes = 64 * 1024});
  core::StateStorePrimitive store(tb.tor(), counters, {});

  // A 3x2048 Count Sketch beside it, on its own channel.
  auto sketch_channel = tb.controller().setup_channel(
      tb.host(2), tb.port_of(2), {.region_bytes = 3 * 2048 * 8});
  apps::CountSketchApp sketch(tb.tor(), sketch_channel, {.rows = 3});

  // Five flows with very different rates.
  host::PacketSink sink(tb.host(1));
  struct Flow {
    std::uint16_t port;
    std::uint64_t packets;
  };
  const std::vector<Flow> flows = {
      {7001, 4000}, {7002, 1500}, {7003, 600}, {7004, 200}, {7005, 50}};
  std::vector<std::unique_ptr<host::CbrTrafficGen>> gens;
  for (const Flow& flow : flows) {
    gens.push_back(std::make_unique<host::CbrTrafficGen>(
        tb.host(0), host::CbrTrafficGen::Config{
                        .dst_mac = tb.host(1).mac(),
                        .dst_ip = tb.host(1).ip(),
                        .src_port = flow.port,
                        .frame_size = 128,
                        .rate = sim::gbps(2),
                        .packet_limit = flow.packets}));
    gens.back()->start();
  }
  tb.sim().run();
  for (int i = 0; i < 20 && !store.quiescent(); ++i) {
    store.flush();
    tb.sim().run_until(tb.sim().now() + sim::milliseconds(1));
    tb.sim().run();
  }

  // Operator-side analysis: read the server's DRAM directly.
  auto exact = control::ChannelController::region_bytes(tb.host(2), counters);
  auto sk = control::ChannelController::region_bytes(tb.host(2),
                                                     sketch_channel);
  std::printf("flow   sent   exact counter   sketch estimate\n");
  std::printf("---------------------------------------------\n");
  for (const Flow& flow : flows) {
    net::FiveTuple tuple{tb.host(0).ip(), tb.host(1).ip(), flow.port, 9000,
                         17};
    const std::uint64_t idx =
        net::flow_hash(tuple, 0x517cc1b727220a95ULL) % (exact.size() / 8);
    const std::uint64_t counted =
        rnic::load_le64(exact.subspan(idx * 8, 8));
    const std::int64_t estimate =
        sketch.estimate(sk, net::flow_hash(tuple));
    std::printf(":%u  %6llu  %14llu  %15lld\n", flow.port,
                static_cast<unsigned long long>(flow.packets),
                static_cast<unsigned long long>(counted),
                static_cast<long long>(estimate));
  }
  std::printf("\nF&A ops issued: %llu exact + %llu sketch; server CPU: %llu\n",
              static_cast<unsigned long long>(store.stats().fetch_adds_sent),
              static_cast<unsigned long long>(sketch.stats().fetch_adds_sent),
              static_cast<unsigned long long>(tb.host(2).cpu_packets()));
  return 0;
}
