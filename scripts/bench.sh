#!/usr/bin/env bash
# Run the pinned perf benches through bench/perf_gate and maintain the
# repo's perf trajectory file (BENCH_PR5.json).
#
#   scripts/bench.sh                  # run pinned set, merge as 'post',
#                                     # then compare against 'baseline'
#   scripts/bench.sh --tag baseline   # (re)record the baseline entries
#   scripts/bench.sh --compare        # compare only, no re-run
#   scripts/bench.sh --summary        # markdown table for README
#   scripts/bench.sh --jobs N         # worker threads for the
#                                     # sweep-capable benches (a10, a11,
#                                     # m2); default = each bench's own
#                                     # resolution (XMEM_JOBS, then host
#                                     # cores). Results are byte-identical
#                                     # at any value — this only moves
#                                     # wall-clock.
#
# Environment: BUILD_DIR (default: build), BENCH_FILE (default:
# BENCH_PR5.json), BENCH_TOLERANCE (default 0.10), BENCH_FAIL_FACTOR
# (default 2.0).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}
FILE=${BENCH_FILE:-BENCH_PR5.json}
TOLERANCE=${BENCH_TOLERANCE:-0.10}
FAIL_FACTOR=${BENCH_FAIL_FACTOR:-2.0}
GATE="$BUILD/bench/perf_gate"
# The m1 subset pinned by the perf gate: event-engine and packet hot paths.
M1_FILTER='EventQueueScheduleFire|EventQueueCancelChurn|PacketClone|PacketCloneTruncate64|BM_ParsePacket'

mode=run
tag=post
jobs=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --summary) mode=summary ;;
    --compare) mode=compare ;;
    --tag) tag=$2; shift ;;
    --file) FILE=$2; shift ;;
    --jobs) jobs=$2; shift ;;
    *) echo "bench.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done
# Sweep-capable benches get the worker knob as bench argv (empty = let
# the bench resolve XMEM_JOBS / host cores itself).
sweep_args=()
if [[ -n "$jobs" ]]; then
  sweep_args=(--jobs "$jobs")
fi

if [[ $mode == summary ]]; then
  exec "$GATE" summary --file "$FILE"
fi
if [[ $mode == compare ]]; then
  exec "$GATE" compare --file "$FILE" --tolerance "$TOLERANCE" \
    --fail-factor "$FAIL_FACTOR"
fi

cmake --build "$BUILD" -j --target perf_gate m1_micro \
  t1_packet_buffer_throughput fig3b_statestore_bw a7_shard_scale \
  f1c_telemetry a10_cache_zipf a11_cc_matrix m2_parallel_scale >/dev/null

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$GATE" run --bin "$BUILD/bench/m1_micro" --label m1_micro \
  --out "$tmp/m1_micro.json" -- --benchmark_filter="$M1_FILTER"
"$GATE" run --bin "$BUILD/bench/t1_packet_buffer_throughput" --label t1 \
  --out "$tmp/t1.json"
"$GATE" run --bin "$BUILD/bench/fig3b_statestore_bw" --label fig3b \
  --out "$tmp/fig3b.json"
"$GATE" run --bin "$BUILD/bench/a7_shard_scale" --label a7 \
  --out "$tmp/a7.json"
# f1c pins the observability plane: absolute events/s with telemetry off
# and on, plus int_overhead_pct (lower-is-better, floored at 1% inside
# the bench so the fail factor bounds it at 2% absolute).
"$GATE" run --bin "$BUILD/bench/f1c_telemetry" --label f1c \
  --out "$tmp/f1c.json"
# a10 pins the lookup-cache claim: >= 10x p50 at alpha=0.99 with a 1%
# cache (pinned p50s are "us" lower-is-better; hit rates/speedup are
# "ratio"/"x" higher-is-better — both directions guarded).
"$GATE" run --bin "$BUILD/bench/a10_cache_zipf" --label a10 \
  --out "$tmp/a10.json" ${sweep_args[@]+-- "${sweep_args[@]}"}
# a11 pins the congestion-control claim: DCQCN+PFC recovers >= 2x tenant
# goodput under the 16:1 incast versus no CC (cc_recovery_x is "x"
# higher-is-better; per-cell goodputs are Gbps higher-is-better, op p99s
# are "us" lower-is-better — the gate guards both directions).
"$GATE" run --bin "$BUILD/bench/a11_cc_matrix" --label a11 \
  --out "$tmp/a11.json" ${sweep_args[@]+-- "${sweep_args[@]}"}
# m2 pins the parallel sweep engine: aggregate events/s at 8 workers vs
# serial ("events/s" and the speedup "x" are higher-is-better). The
# numbers are host-core-dependent; the bench's "sweep" header records
# jobs + host_cores so cross-machine comparisons stay honest, and gate
# improvements (a bigger host) never fail.
"$GATE" run --bin "$BUILD/bench/m2_parallel_scale" --label m2 \
  --out "$tmp/m2.json" ${sweep_args[@]+-- "${sweep_args[@]}"}

"$GATE" merge --out "$FILE" --tag "$tag" \
  "$tmp/m1_micro.json" "$tmp/t1.json" "$tmp/fig3b.json" "$tmp/a7.json" \
  "$tmp/f1c.json" "$tmp/a10.json" "$tmp/a11.json" "$tmp/m2.json"

if [[ $tag == post ]]; then
  "$GATE" compare --file "$FILE" --tolerance "$TOLERANCE" \
    --fail-factor "$FAIL_FACTOR"
fi
