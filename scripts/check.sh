#!/usr/bin/env bash
# Full pre-merge check: tier-1 build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (-DXMEM_SANITIZE).
#
#   $ scripts/check.sh            # both passes
#   $ scripts/check.sh --fast     # tier-1 only, skip the sanitizer pass
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
case "${1:-}" in
  --fast) fast=1 ;;
  "") ;;
  *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
esac

echo "== tier-1: build + ctest =="
cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$fast" == 1 ]]; then
  echo "== OK (tier-1 only) =="
  exit 0
fi

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B "$repo/build-asan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DXMEM_SANITIZE=address,undefined
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== OK: tier-1 + sanitizer suites green =="
