#!/usr/bin/env bash
# Pre-merge check, also the only entry point CI is allowed to call:
# tier-1 build + ctest, and/or the same suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (-DXMEM_SANITIZE).
#
#   $ scripts/check.sh             # both passes (local pre-merge default)
#   $ scripts/check.sh --tier1     # Release build + tier-1 ctest only
#   $ scripts/check.sh --sanitize  # ASan+UBSan build + ctest only
#   $ scripts/check.sh --fast      # alias for --tier1 (kept for habit)
#   $ scripts/check.sh --chaos     # Release build + chaos-labeled ctests
#                                  # (fault injection + invariant suite)
#   $ scripts/check.sh --tsan      # ThreadSanitizer build (-DXMEM_TSAN=ON)
#                                  # + tier-1 ctest: the data-race leg of
#                                  # the determinism contract
#   $ scripts/check.sh --lint      # xmem-lint v2 tree-wide (src, tools,
#                                  # bench, examples, tests) against the
#                                  # committed baseline, plus the fixture
#                                  # selftest; ends with a grep-able
#                                  # "CHECK: lint OK/FAIL" verdict
#   $ scripts/check.sh --bench     # perf gate: re-run the pinned bench
#                                  # set and compare against the committed
#                                  # baseline in BENCH_PR5.json (warn past
#                                  # BENCH_TOLERANCE, fail past
#                                  # BENCH_FAIL_FACTOR)
#   $ scripts/check.sh --report    # telemetry report: run the a9
#                                  # incast-restart scenario, export its
#                                  # time series and render
#                                  # build/telemetry/report.md (markdown
#                                  # tables + sparklines via xmem_report,
#                                  # including any postmortem bundles
#                                  # found in build/telemetry/)
#   $ scripts/check.sh --format    # clang-format check-only pass
#   $ scripts/check.sh --tidy      # clang-tidy build (XMEM_TIDY=ON)
#   $ scripts/check.sh --cache     # lookup-cache suite: build + run the
#                                  # cache-focused tier-1 tests and the
#                                  # a10 cache bench (JSON exported to
#                                  # <build>/telemetry/a10_cache_zipf.json)
#   $ scripts/check.sh --cache-asan   # same suite under ASan+UBSan
#   $ scripts/check.sh --cc        # congestion-control suite: build + run
#                                  # the DCQCN/PFC/RNIC-focused tier-1
#                                  # tests and the a11 CC matrix bench
#                                  # (JSON + incast time series exported
#                                  # to <build>/telemetry/)
#   $ scripts/check.sh --cc-asan   # same suite under ASan+UBSan
#   $ scripts/check.sh --sweep     # parallel sweep engine suite: build +
#                                  # run the thread-pool / sweep-driver
#                                  # tests, the m2 scaling bench, and the
#                                  # byte-identity harness (a10 + a11 run
#                                  # at --jobs 1 and --jobs 4; their
#                                  # "results" payloads must match to the
#                                  # byte — only the "sweep" execution
#                                  # header may differ)
#
# --cache/--cache-asan accept `--cache-policy <lru|lfu|fifo>`: exported
# as XMEM_CACHE_POLICY, which LookupCache::policy_from_env() picks up
# wherever a test or bench leaves the eviction policy unspecified. This
# is the CI cache-matrix passthrough — the workflow never sets env vars
# itself, it only passes this flag.
#
# --format and --tidy need clang tooling the dev container may not ship;
# when the tool is absent they skip with an explicit "skipped" verdict
# (CI installs the tools, so the real gate always runs there).
#
# Exits nonzero the moment any build or test step fails (set -e +
# pipefail; a trap prints a grep-able FAIL verdict), and ends with
# exactly one "CHECK " verdict line either way, so CI and humans can
# `grep '^CHECK '` instead of scraping build output.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

# Any failure under `set -e` lands here: one grep-able verdict, nonzero
# exit propagated to the caller (CI job turns red).
trap 'status=$?; if [[ $status -ne 0 ]]; then echo "CHECK FAIL (exit $status)"; fi' EXIT

run_tier1=1
run_sanitize=1
run_chaos=0
run_tsan=0
run_lint=0
run_format=0
run_tidy=0
run_bench=0
run_report=0
run_cache=0
cache_asan=0
cache_policy=""
run_cc=0
cc_asan=0
run_sweep=0
usage() {
  echo "usage: $0 [--tier1|--sanitize|--tsan|--fast|--chaos|--lint|--format|--tidy|--bench|--report|--cache|--cache-asan|--cc|--cc-asan|--sweep] [--cache-policy <lru|lfu|fifo>]" >&2
  exit 2
}
solo() { run_tier1=0; run_sanitize=0; }
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tier1|--fast) run_sanitize=0 ;;
    --sanitize) run_tier1=0 ;;
    --chaos) solo; run_chaos=1 ;;
    --tsan) solo; run_tsan=1 ;;
    --lint) solo; run_lint=1 ;;
    --format) solo; run_format=1 ;;
    --tidy) solo; run_tidy=1 ;;
    --bench) solo; run_bench=1 ;;
    --report) solo; run_report=1 ;;
    --cache) solo; run_cache=1 ;;
    --cache-asan) solo; run_cache=1; cache_asan=1 ;;
    --cc) solo; run_cc=1 ;;
    --cc-asan) solo; run_cc=1; cc_asan=1 ;;
    --sweep) solo; run_sweep=1 ;;
    --cache-policy)
      [[ $# -ge 2 ]] || usage
      cache_policy=$2; shift
      case "$cache_policy" in
        lru|lfu|fifo) ;;
        *) echo "check.sh: unknown cache policy '$cache_policy'" >&2; exit 2 ;;
      esac ;;
    *) usage ;;
  esac
  shift
done

if [[ "$run_tier1" == 1 ]]; then
  echo "== tier-1: Release build + ctest =="
  cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo/build" -j "$jobs"
  ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"
fi

if [[ "$run_chaos" == 1 ]]; then
  echo "== chaos: Release build + chaos-labeled ctest =="
  cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo/build" -j "$jobs"
  # When CI routes flight-recorder postmortems to an artifact directory
  # (XMEM_POSTMORTEM_DIR), make sure the tests can actually write there.
  if [[ -n "${XMEM_POSTMORTEM_DIR:-}" ]]; then
    mkdir -p "$XMEM_POSTMORTEM_DIR"
  fi
  ctest --test-dir "$repo/build" -L chaos --output-on-failure -j "$jobs"
fi

if [[ "$run_sanitize" == 1 ]]; then
  echo "== sanitizers: ASan + UBSan build + ctest =="
  cmake -B "$repo/build-asan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DXMEM_SANITIZE=address,undefined
  cmake --build "$repo/build-asan" -j "$jobs"
  ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== tsan: ThreadSanitizer build + tier-1 ctest =="
  cmake -B "$repo/build-tsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DXMEM_TSAN=ON
  cmake --build "$repo/build-tsan" -j "$jobs"
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs"
  # Replica isolation is machine-checked, not asserted: drive the sweep
  # engine's real fan-out (m2's 8 replicas at 1/2/4/8 workers) under
  # TSan. Any shared mutable state between replicas is a race report
  # here. TSan wall-clock is meaningless, so the JSON goes to /dev/null
  # and only the exit code (digest byte-identity) gates.
  echo "== tsan: m2 parallel sweep under ThreadSanitizer =="
  "$repo/build-tsan/bench/m2_parallel_scale" --json /dev/null
fi

if [[ "$run_lint" == 1 ]]; then
  echo "== lint: xmem-lint v2 tree-wide + fixture selftest =="
  cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo/build" --target xmem_lint -j "$jobs"
  lint_bin="$repo/build/tools/xmem_lint/xmem_lint"
  # Tree-wide against the committed baseline: any non-baselined finding,
  # or a stale baseline entry, fails the gate. Findings print in the
  # `path:line: [rule] message` format the CI problem matcher
  # (.github/problem-matchers/xmem-lint.json) turns into PR annotations.
  lint_status=0
  "$lint_bin" --baseline "$repo/tools/xmem_lint/baseline.txt" \
    "$repo/src" "$repo/tools" "$repo/bench" "$repo/examples" "$repo/tests" \
    || lint_status=$?
  "$repo/tools/xmem_lint/selftest.sh" "$lint_bin" "$repo"
  # Fail fast with a grep-able per-gate verdict (distinct from the final
  # "CHECK " line so dashboards can key on the lint gate specifically).
  if [[ "$lint_status" -ne 0 ]]; then
    echo "CHECK: lint FAIL (xmem-lint exit $lint_status)"
    exit "$lint_status"
  fi
  echo "CHECK: lint OK"
fi

if [[ "$run_cache" == 1 ]]; then
  if [[ -n "$cache_policy" ]]; then
    export XMEM_CACHE_POLICY="$cache_policy"
  fi
  if [[ "$cache_asan" == 1 ]]; then
    echo "== cache suite (ASan+UBSan, policy=${cache_policy:-default}) =="
    cache_build="$repo/build-asan"
    cmake -B "$cache_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DXMEM_SANITIZE=address,undefined
  else
    echo "== cache suite (Release, policy=${cache_policy:-default}) =="
    cache_build="$repo/build"
    cmake -B "$cache_build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  fi
  cmake --build "$cache_build" -j "$jobs" \
    --target lookup_cache_test lookup_table_test channel_set_test \
    channel_test a10_cache_zipf
  # Everything cache-adjacent: the cache unit suite plus the primitive
  # and channel-health integration tests that exercise it end to end.
  ctest --test-dir "$cache_build" -R "lookup|channel" --output-on-failure \
    -j "$jobs"
  mkdir -p "$cache_build/telemetry"
  "$cache_build/bench/a10_cache_zipf" \
    --json "$cache_build/telemetry/a10_cache_zipf.json"
fi

if [[ "$run_cc" == 1 ]]; then
  if [[ "$cc_asan" == 1 ]]; then
    echo "== congestion-control suite (ASan+UBSan) =="
    cc_build="$repo/build-asan"
    cmake -B "$cc_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DXMEM_SANITIZE=address,undefined
  else
    echo "== congestion-control suite (Release) =="
    cc_build="$repo/build"
    cmake -B "$cc_build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  fi
  cmake --build "$cc_build" -j "$jobs" \
    --target dcqcn_channel_test pfc_test dctcp_test rnic_test roce_test \
    channel_test a11_cc_matrix
  # Everything congestion-adjacent: the DCQCN rate-machine / CNP / RTO
  # unit suite plus the PFC, ECN (DCTCP), RNIC responder, RoCE framing
  # and channel integration tests that exercise the loop end to end.
  ctest --test-dir "$cc_build" -R "dcqcn|pfc|dctcp|rnic|roce|^channel" \
    --output-on-failure -j "$jobs"
  mkdir -p "$cc_build/telemetry"
  # The full 4x3 matrix is one deterministic run; its verdicts compare
  # designs against each other, so it is never sliced per-design.
  "$cc_build/bench/a11_cc_matrix" \
    --json "$cc_build/telemetry/a11_cc_matrix.json" \
    --timeseries "$cc_build/telemetry/a11_incast_timeseries.json"
fi

if [[ "$run_sweep" == 1 ]]; then
  echo "== sweep: parallel engine tests + m2 scaling + byte-identity =="
  cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo/build" -j "$jobs" \
    --target thread_pool_test determinism_test sim_test \
    m2_parallel_scale a10_cache_zipf a11_cc_matrix
  # The engine's unit surface (pool backpressure/shutdown/exceptions,
  # driver merge order, Rng::split) plus the cross-jobs determinism case.
  ctest --test-dir "$repo/build" -R "thread_pool|determinism|^sim" \
    --output-on-failure -j "$jobs"
  mkdir -p "$repo/build/telemetry"
  "$repo/build/bench/m2_parallel_scale" \
    --json "$repo/build/telemetry/m2_parallel_scale.json"
  # Byte-identity of the deterministic payload: each matrix bench run
  # serially and at 4 workers must write identical bytes up to the
  # "sweep" execution-record header (which records the actual jobs/cores
  # and so legitimately differs — DESIGN.md §17).
  for b in a10_cache_zipf a11_cc_matrix; do
    "$repo/build/bench/$b" --jobs 1 \
      --json "$repo/build/telemetry/${b}_j1.json" > /dev/null
    "$repo/build/bench/$b" --jobs 4 \
      --json "$repo/build/telemetry/${b}_j4.json" > /dev/null
    python3 - "$repo/build/telemetry/${b}_j1.json" \
      "$repo/build/telemetry/${b}_j4.json" <<'PYEOF'
import sys
a, b = (open(p).read().split('"sweep"')[0] for p in sys.argv[1:3])
if a != b:
    sys.exit("sweep byte-identity FAIL: deterministic payload differs "
             "between jobs=1 and jobs=4")
PYEOF
    echo "sweep: $b payload byte-identical at jobs=1 and jobs=4"
  done
fi

if [[ "$run_bench" == 1 ]]; then
  echo "== bench: pinned perf set vs committed baseline =="
  cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  # bench.sh re-records the 'post' entries and runs perf_gate compare,
  # which exits nonzero only past BENCH_FAIL_FACTOR (default 2.0x).
  bench_status=0
  "$repo/scripts/bench.sh" || bench_status=$?
  # Post the perf trajectory as the job's step summary (markdown) before
  # failing, so a red gate still ships the table it failed on.
  if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
    "$repo/scripts/bench.sh" --summary >> "$GITHUB_STEP_SUMMARY" || true
  fi
  # Fail fast with a grep-able per-gate verdict (distinct from the final
  # "CHECK " line so dashboards can key on the bench gate specifically).
  if [[ "$bench_status" -ne 0 ]]; then
    echo "CHECK: bench FAIL (perf gate exit $bench_status)"
    exit "$bench_status"
  fi
  echo "CHECK: bench OK"
fi

if [[ "$run_report" == 1 ]]; then
  echo "== report: telemetry exports + markdown rendering =="
  cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo/build" -j "$jobs" \
    --target a9_incast_timeseries xmem_report
  tdir="$repo/build/telemetry"
  mkdir -p "$tdir"
  "$repo/build/bench/a9_incast_timeseries" \
    --timeseries "$tdir/a9_timeseries.json"
  # Fold in any flight-recorder bundles a prior (chaos) run left behind.
  bundles=()
  while IFS= read -r -d '' f; do bundles+=("$f"); done \
    < <(find "$tdir" -name '*postmortem*.json' -print0 | sort -z)
  "$repo/build/tools/xmem_report/xmem_report" \
    --title "xmem telemetry report" --out "$tdir/report.md" \
    "$tdir/a9_timeseries.json" ${bundles[@]+"${bundles[@]}"}
  echo "report written to $tdir/report.md"
fi

format_skipped=0
if [[ "$run_format" == 1 ]]; then
  echo "== format: clang-format check-only pass =="
  if command -v clang-format >/dev/null 2>&1; then
    (cd "$repo" && git ls-files '*.hpp' '*.cpp' |
       xargs clang-format --dry-run --Werror)
  else
    echo "clang-format not installed; skipping"
    format_skipped=1
  fi
fi

tidy_skipped=0
if [[ "$run_tidy" == 1 ]]; then
  echo "== tidy: clang-tidy build (XMEM_TIDY=ON) =="
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B "$repo/build-tidy" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
          -DXMEM_TIDY=ON
    cmake --build "$repo/build-tidy" -j "$jobs"
  else
    echo "clang-tidy not installed; skipping"
    tidy_skipped=1
  fi
fi

if [[ "$run_tier1" == 1 && "$run_sanitize" == 1 ]]; then
  echo "CHECK OK (tier1 + sanitize)"
elif [[ "$run_tier1" == 1 ]]; then
  echo "CHECK OK (tier1)"
elif [[ "$run_chaos" == 1 ]]; then
  echo "CHECK OK (chaos)"
elif [[ "$run_tsan" == 1 ]]; then
  echo "CHECK OK (tsan)"
elif [[ "$run_lint" == 1 ]]; then
  echo "CHECK OK (lint)"
elif [[ "$run_bench" == 1 ]]; then
  echo "CHECK OK (bench)"
elif [[ "$run_cache" == 1 && "$cache_asan" == 1 ]]; then
  echo "CHECK OK (cache-asan policy=${cache_policy:-default})"
elif [[ "$run_cache" == 1 ]]; then
  echo "CHECK OK (cache policy=${cache_policy:-default})"
elif [[ "$run_cc" == 1 && "$cc_asan" == 1 ]]; then
  echo "CHECK OK (cc-asan)"
elif [[ "$run_cc" == 1 ]]; then
  echo "CHECK OK (cc)"
elif [[ "$run_sweep" == 1 ]]; then
  echo "CHECK OK (sweep)"
elif [[ "$run_report" == 1 ]]; then
  echo "CHECK OK (report)"
elif [[ "$run_format" == 1 ]]; then
  if [[ "$format_skipped" == 1 ]]; then
    echo "CHECK OK (format skipped: clang-format not installed)"
  else
    echo "CHECK OK (format)"
  fi
elif [[ "$run_tidy" == 1 ]]; then
  if [[ "$tidy_skipped" == 1 ]]; then
    echo "CHECK OK (tidy skipped: clang-tidy not installed)"
  else
    echo "CHECK OK (tidy)"
  fi
else
  echo "CHECK OK (sanitize)"
fi
