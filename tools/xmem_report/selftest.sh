#!/usr/bin/env bash
# xmem-report self-test: the renderer must turn the checked-in fixture
# exports into the expected markdown shapes, byte-identically across
# runs, and reject inputs it does not understand.
#
# Usage: selftest.sh <path-to-xmem_report-binary> <repo-root>
set -euo pipefail

REPORT="$1"
ROOT="$2"
FIXTURES="$ROOT/tools/xmem_report/fixtures"

fail() {
  echo "xmem-report selftest: $*" >&2
  exit 1
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# 1. Both fixture schemas render in one report.
"$REPORT" --out "$tmp/report.md" \
  "$FIXTURES/timeseries.json" "$FIXTURES/postmortem.json" ||
  fail "fixtures should render"

grep -q '^## Time series' "$tmp/report.md" || fail "missing time-series section"
grep -q '^## Flight recorder' "$tmp/report.md" || fail "missing postmortem section"
grep -q 'store/acks_received' "$tmp/report.md" || fail "missing series row"
grep -q 'rnic_restart' "$tmp/report.md" || fail "missing flight event row"
grep -q 'invariant: response PSN gap' "$tmp/report.md" || fail "missing reason"
# A rising series must produce a sparkline that starts low and ends high.
grep -q '▁.*█' "$tmp/report.md" || fail "missing rising sparkline"
# The stats columns: acks series spans 40..110 with 110 last.
grep -E -q 'store/acks_received.*\| 40 \|.*\| 110 \| 110 \|' "$tmp/report.md" ||
  fail "bad min/max/last for acks series"

# 2. Byte-identical across runs (report generation is deterministic).
"$REPORT" --out "$tmp/report2.md" \
  "$FIXTURES/timeseries.json" "$FIXTURES/postmortem.json"
cmp -s "$tmp/report.md" "$tmp/report2.md" || fail "report not deterministic"

# 3. Garbage in, nonzero out.
echo 'not json' >"$tmp/garbage.json"
if "$REPORT" "$tmp/garbage.json" >/dev/null 2>&1; then
  fail "garbage input should fail"
fi
echo '{"schema":"xmem-unknown-v9"}' >"$tmp/unknown.json"
if "$REPORT" "$tmp/unknown.json" >/dev/null 2>&1; then
  fail "unknown schema should fail"
fi
if "$REPORT" >/dev/null 2>&1; then
  fail "no inputs should print usage and fail"
fi

echo "xmem-report selftest: OK"
