// xmem-report: render telemetry exports into one markdown report.
//
// Input files are the JSON artifacts the telemetry layer writes —
// time-series exports ("xmem-timeseries-v1", from
// TimeSeriesRecorder::write_json) and flight-recorder postmortems
// ("xmem-postmortem-v1", from FlightRecorder::write_postmortem). Each
// file is sniffed by its "schema" field, so the CLI takes a bare list:
//
//   xmem_report [--out report.md] [--width N] [--title STR] file.json...
//
// The output is markdown meant to be pasted into a PR description or a
// CI job summary: one table per export with min/mean/max/last per
// series plus a U+2581..U+2588 sparkline, and the event ring + final
// metric snapshot for postmortems. Rendering is a pure function of the
// inputs — identical files yield byte-identical reports — so goldens
// in CI stay diffable.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace json = xmem::telemetry::json;

namespace {

constexpr int kDefaultSparkWidth = 40;

// Eight block heights; index = quantized level. Narrow literals carry
// the UTF-8 bytes directly (the repo builds with a UTF-8 execution
// charset everywhere).
const char* const kBars[8] = {"▁", "▂", "▃", "▄",
                              "▅", "▆", "▇", "█"};

/// Compact numeric formatting for table cells: integers stay integral,
/// everything else gets four significant digits.
std::string fmt(double v) {
  char buf[64];
  if (v == static_cast<std::int64_t>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

/// Downsample `values` to at most `width` buckets (bucket mean), then
/// quantize each bucket against the series' own min..max range. A flat
/// series renders as a baseline of U+2581 — still visibly "present".
std::string sparkline(const std::vector<double>& values, int width) {
  if (values.empty()) return "";
  const std::size_t n = values.size();
  const std::size_t w = std::min<std::size_t>(static_cast<std::size_t>(width), n);
  std::vector<double> buckets(w, 0.0);
  for (std::size_t b = 0; b < w; ++b) {
    const std::size_t lo = b * n / w;
    const std::size_t hi = std::max(lo + 1, (b + 1) * n / w);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    buckets[b] = sum / static_cast<double>(hi - lo);
  }
  const auto [mn_it, mx_it] = std::minmax_element(buckets.begin(), buckets.end());
  const double mn = *mn_it;
  const double span = *mx_it - mn;
  std::string out;
  for (const double v : buckets) {
    int level = 0;
    if (span > 0.0) {
      level = static_cast<int>((v - mn) / span * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kBars[level];
  }
  return out;
}

/// Markdown table cells can't contain bare pipes.
std::string md_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

void render_timeseries(const json::Value& doc, const std::string& path,
                       int width, std::string& out) {
  out += "## Time series — `" + path + "`\n\n";
  out += "period " + fmt(doc.at("period_us").number()) + " µs · " +
         fmt(doc.at("ticks").number()) + " ticks · ring capacity " +
         fmt(doc.at("capacity").number()) + "\n\n";
  out += "| series | unit | min | mean | max | last | dropped | trend |\n";
  out += "|---|---|--:|--:|--:|--:|--:|---|\n";
  for (const json::Value& s : doc.at("series").array()) {
    std::vector<double> values;
    for (const json::Value& p : s.at("points").array()) {
      values.push_back(p.array().at(1).number());
    }
    std::string mn = "—", mean = "—", mx = "—", last = "—";
    if (!values.empty()) {
      const auto [mn_it, mx_it] =
          std::minmax_element(values.begin(), values.end());
      double sum = 0.0;
      for (const double v : values) sum += v;
      mn = fmt(*mn_it);
      mx = fmt(*mx_it);
      mean = fmt(sum / static_cast<double>(values.size()));
      last = fmt(values.back());
    }
    out += "| `" + md_escape(s.at("name").string()) + "` | " +
           md_escape(s.at("unit").string()) + " | " + mn + " | " + mean +
           " | " + mx + " | " + last + " | " +
           fmt(s.at("dropped").number()) + " | " + sparkline(values, width) +
           " |\n";
  }
  out += "\n";
}

void render_postmortem(const json::Value& doc, const std::string& path,
                       std::string& out) {
  out += "## Flight recorder — `" + path + "`\n\n";
  out += "reason: **" + md_escape(doc.at("reason").string()) + "** · dumped at " +
         fmt(doc.at("dumped_at_us").number()) + " µs · " +
         fmt(doc.at("total_recorded").number()) + " recorded, " +
         fmt(doc.at("overwritten").number()) + " overwritten (ring capacity " +
         fmt(doc.at("capacity").number()) + ")\n\n";
  out += "| t (µs) | kind | subject | code | a | b | label |\n";
  out += "|--:|---|--:|--:|--:|--:|---|\n";
  for (const json::Value& e : doc.at("events").array()) {
    out += "| " + fmt(e.at("t_us").number()) + " | " +
           md_escape(e.at("kind").string()) + " | " +
           fmt(e.at("subject").number()) + " | " + fmt(e.at("code").number()) +
           " | " + fmt(e.at("a").number()) + " | " + fmt(e.at("b").number()) +
           " | " + md_escape(e.at("label").string()) + " |\n";
  }
  out += "\n";
  if (doc.contains("metrics")) {
    out += "Final metric snapshot:\n\n";
    out += "| metric | kind | value | unit |\n";
    out += "|---|---|--:|---|\n";
    for (const json::Value& m : doc.at("metrics").array()) {
      out += "| `" + md_escape(m.at("name").string()) + "` | " +
             md_escape(m.at("kind").string()) + " | " +
             fmt(m.at("value").number()) + " | " +
             (m.contains("unit") ? md_escape(m.at("unit").string()) : "") +
             " |\n";
    }
    out += "\n";
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out FILE] [--width N] [--title STR] "
               "<export.json>...\n"
               "Inputs are sniffed by their \"schema\" field:\n"
               "  xmem-timeseries-v1   TimeSeriesRecorder::write_json\n"
               "  xmem-postmortem-v1   FlightRecorder::write_postmortem\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string title = "xmem telemetry report";
  int width = kDefaultSparkWidth;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--width" && i + 1 < argc) {
      width = std::atoi(argv[++i]);
      if (width < 1 || width > 400) {
        std::fprintf(stderr, "xmem-report: --width out of range\n");
        return 2;
      }
    } else if (arg == "--title" && i + 1 < argc) {
      title = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "xmem-report: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::string report = "# " + title + "\n\n";
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "xmem-report: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    json::Value doc;
    try {
      doc = json::parse(buf.str());
    } catch (const json::ParseError& e) {
      std::fprintf(stderr, "xmem-report: %s: %s\n", path.c_str(), e.what());
      return 1;
    }
    if (!doc.is_object() || !doc.contains("schema") ||
        !doc.at("schema").is_string()) {
      std::fprintf(stderr, "xmem-report: %s: no schema field\n", path.c_str());
      return 1;
    }
    const std::string& schema = doc.at("schema").string();
    try {
      if (schema == "xmem-timeseries-v1") {
        render_timeseries(doc, path, width, report);
      } else if (schema == "xmem-postmortem-v1") {
        render_postmortem(doc, path, report);
      } else {
        std::fprintf(stderr, "xmem-report: %s: unknown schema '%s'\n",
                     path.c_str(), schema.c_str());
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "xmem-report: %s: malformed export: %s\n",
                   path.c_str(), e.what());
      return 1;
    }
  }

  if (out_path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "xmem-report: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::size_t written = std::fwrite(report.data(), 1, report.size(), f);
  const bool ok = written == report.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "xmem-report: short write to %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
