// xmem-lint v2 rules: six protocol rules carried over from v1 and six
// determinism/concurrency rules encoding the parallel-engine contract.
//
// Protocol rules (PR 4-6 heritage; see DESIGN.md §11):
//   psn-compare, trace-pair, wire-bytes, wire-assert, wire-pin,
//   packet-value
//
// Determinism rules (DESIGN.md §16):
//   wallclock-ban        no wall-clock reads in simulation code; results
//                        must be a function of seeds and the event order
//   raw-rand-ban         all randomness through sim::Rng (bit-stable
//                        across standard libraries)
//   unordered-iteration  no scheduling/sending/serializing from inside a
//                        loop over an unordered container (hash order is
//                        not part of the replay contract)
//   raw-time-arith       sim::Time values are built with the unit
//                        constructors, never raw literals
//   mutable-global       no mutable namespace-scope state (a data race
//                        the day event loops go per-thread)
//   env-read             getenv only inside the sim::Env snapshot shim
#include "rules.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <string>

namespace xmem_lint {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarn:
      return "warn";
    case Severity::kOff:
      return "off";
  }
  return "?";
}

bool FileContext::in_dir(const std::string& dir) const {
  return path.find("/" + dir + "/") != std::string::npos ||
         path.compare(0, dir.size() + 1, dir + "/") == 0;
}

bool FileContext::ends_with(std::string_view suffix) const {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

const std::string& FileContext::raw_line(std::size_t line) const {
  static const std::string kEmpty;
  if (line == 0 || line > raw.size()) return kEmpty;
  return raw[line - 1];
}

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_word(const std::string& s, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Does line `line` (or the line right before it) carry an
/// `xmem-lint: allow(<rule>)` waiver?
bool waived(const FileContext& f, std::size_t line, std::string_view rule) {
  const std::string tag = "xmem-lint: allow(" + std::string(rule) + ")";
  return f.raw_line(line).find(tag) != std::string::npos ||
         (line > 1 && f.raw_line(line - 1).find(tag) != std::string::npos);
}

// ---------------------------------------------------------------------
// psn-compare (v1 heritage: line-shaped, relies on enforced formatting)
// ---------------------------------------------------------------------

bool psn_named(const std::string& name) {
  if (name == "psn" || name == "epsn") return true;
  if (name.size() > 4 && name.compare(name.size() - 4, 4, "_psn") == 0) {
    return true;
  }
  if (name.size() > 4 && name.compare(0, 4, "psn_") == 0) return true;
  return false;
}

bool blessed_psn_helper(const std::string& name) {
  static const std::set<std::string> kHelpers = {"psn_lt", "psn_ge",
                                                "psn_add", "psn_distance"};
  return kHelpers.count(name) != 0;
}

struct Operand {
  std::string name;
  bool is_call = false;
  bool valid = false;
};

Operand left_operand(const std::string& s, std::size_t pos) {
  Operand op;
  std::size_t i = pos;
  while (i > 0 && s[i - 1] == ' ') --i;
  if (i == 0) return op;
  if (s[i - 1] == ')' || s[i - 1] == ']') {
    int depth = 0;
    while (i > 0) {
      const char c = s[i - 1];
      if (c == ')' || c == ']') ++depth;
      if (c == '(' || c == '[') {
        --depth;
        if (depth == 0) {
          op.is_call = (c == '(');
          --i;
          break;
        }
      }
      --i;
    }
  }
  std::size_t end = i;
  while (i > 0 && is_ident_char(s[i - 1])) --i;
  if (i == end) return op;
  op.name = s.substr(i, end - i);
  op.valid = true;
  return op;
}

Operand right_operand(const std::string& s, std::size_t pos) {
  Operand op;
  std::size_t i = pos;
  while (i < s.size() && s[i] == ' ') ++i;
  while (i < s.size() && (s[i] == '*' || s[i] == '&' || s[i] == '-' ||
                          s[i] == '+' || s[i] == '!')) {
    ++i;
  }
  std::size_t start = i;
  std::size_t name_start = i;
  while (i < s.size() &&
         (is_ident_char(s[i]) || s[i] == ':' || s[i] == '.' ||
          (s[i] == '-' && i + 1 < s.size() && s[i + 1] == '>'))) {
    if (s[i] == ':' || s[i] == '.') {
      name_start = i + 1;
    } else if (s[i] == '-') {
      ++i;  // consume the '>' of '->'
      name_start = i + 1;
    }
    ++i;
  }
  if (i == start) return op;
  op.name = s.substr(name_start, i - name_start);
  op.is_call = i < s.size() && s[i] == '(';
  op.valid = !op.name.empty();
  return op;
}

class PsnCompareRule final : public Rule {
 public:
  std::string_view id() const override { return "psn-compare"; }
  std::string_view summary() const override {
    return "no raw relational operator on PSN-named values (24-bit "
           "sequence numbers wrap)";
  }
  std::string_view fix_hint() const override {
    return "use roce::psn_lt/psn_ge/psn_distance";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    if (f.ends_with("roce/headers.hpp")) return;  // defines the helpers
    for (std::size_t ln = 1; ln <= f.code.size(); ++ln) {
      const std::string& code = f.code[ln - 1];
      for (std::size_t i = 1; i + 1 < code.size(); ++i) {
        const char c = code[i];
        if (c != '<' && c != '>') continue;
        std::size_t op_end = i + 1;
        if (op_end < code.size() && code[op_end] == '=') ++op_end;
        // Binary relational ops are spaced on both sides; templates,
        // arrows, shifts and fused tokens are not.
        if (code[i - 1] != ' ' || op_end >= code.size() ||
            code[op_end] != ' ') {
          continue;
        }
        const Operand lhs = left_operand(code, i - 1);
        const Operand rhs = right_operand(code, op_end + 1);
        for (const Operand& operand : {lhs, rhs}) {
          if (!operand.valid || !psn_named(operand.name)) continue;
          if (operand.is_call && blessed_psn_helper(operand.name)) continue;
          out.push_back({f.path, ln, std::string(id()),
                         "raw relational operator on PSN-named value '" +
                             operand.name + "'"});
          break;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------
// trace-pair
// ---------------------------------------------------------------------

class TracePairRule final : public Rule {
 public:
  std::string_view id() const override { return "trace-pair"; }
  std::string_view summary() const override {
    return "a TU opening tracer spans (trace_begin) must also close them";
  }
  std::string_view fix_hint() const override {
    return "call trace_complete or trace_retransmit on every span path";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    std::size_t first_begin = 0;
    bool begin_waived = false;
    bool has_complete = false;
    for (std::size_t ln = 1; ln <= f.code.size(); ++ln) {
      const std::string& code = f.code[ln - 1];
      if (code.find("trace_begin") != std::string::npos) {
        if (first_begin == 0) first_begin = ln;
        begin_waived = begin_waived || waived(f, ln, id());
      }
      if (code.find("trace_complete") != std::string::npos ||
          code.find("trace_retransmit") != std::string::npos) {
        has_complete = true;
      }
    }
    if (first_begin != 0 && !has_complete && !begin_waived) {
      out.push_back({f.path, first_begin, std::string(id()),
                     "trace_begin without trace_complete/trace_retransmit "
                     "in this TU leaks open spans"});
    }
  }
};

// ---------------------------------------------------------------------
// wire-bytes
// ---------------------------------------------------------------------

class WireBytesRule final : public Rule {
 public:
  std::string_view id() const override { return "wire-bytes"; }
  std::string_view summary() const override {
    return "wire headers are built and parsed only through "
           "net::ByteWriter/ByteReader";
  }
  std::string_view fix_hint() const override {
    return "replace memcpy/reinterpret_cast with ByteWriter/ByteReader "
           "field accessors";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    const bool wire_dir = f.in_dir("net") || f.in_dir("roce");
    for (std::size_t ln = 1; ln <= f.code.size(); ++ln) {
      const std::string& code = f.code[ln - 1];
      const bool has_cast =
          code.find("memcpy(") != std::string::npos ||
          code.find("reinterpret_cast<") != std::string::npos;
      if (!has_cast) continue;
      const bool touches_wire_words =
          contains_word(code, "packet") || contains_word(code, "frame") ||
          contains_word(code, "wire") || contains_word(code, "payload");
      if (wire_dir || touches_wire_words) {
        out.push_back({f.path, ln, std::string(id()),
                       "wire bytes must go through "
                       "net::ByteWriter/ByteReader, not "
                       "memcpy/reinterpret_cast"});
      }
    }
  }
};

// ---------------------------------------------------------------------
// wire-assert + wire-pin (token/scope-based in v2)
// ---------------------------------------------------------------------

struct WireStructScan {
  struct WireStruct {
    std::string name;
    std::size_t line = 0;
  };
  std::vector<WireStruct> wire_structs;       // structs with serialize(ByteWriter&)
  std::set<std::string> kwire_structs;        // structs declaring kWireBytes
  std::set<std::string> asserted_names;       // identifiers inside static_asserts
};

WireStructScan scan_wire_structs(const FileContext& f) {
  WireStructScan scan;
  ScopeTracker tracker;
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kIdentifier) {
      if (t.text == "serialize" && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        // Attribute serialize(ByteWriter&) members to their struct.
        bool takes_writer = false;
        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")" && --depth == 0) break;
          if (toks[j].text == "ByteWriter") takes_writer = true;
        }
        const std::string& owner = tracker.innermost_struct();
        if (takes_writer && !owner.empty()) {
          scan.wire_structs.push_back({owner, t.line});
        }
      } else if (t.text == "kWireBytes") {
        const std::string& owner = tracker.innermost_struct();
        if (!owner.empty()) scan.kwire_structs.insert(owner);
      } else if (t.text == "static_assert") {
        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")" && --depth == 0) break;
          if (toks[j].kind == Token::Kind::kIdentifier) {
            scan.asserted_names.insert(toks[j].text);
          }
        }
      }
    }
    tracker.feed(t);
  }
  return scan;
}

bool pin_dir(const FileContext& f) {
  return f.in_dir("net") || f.in_dir("roce") || f.in_dir("telemetry");
}

class WireAssertRule final : public Rule {
 public:
  std::string_view id() const override { return "wire-assert"; }
  std::string_view summary() const override {
    return "every on-wire struct must be named in a static_assert "
           "pinning its layout";
  }
  std::string_view fix_hint() const override {
    return "add static_assert(Struct::kWireBytes == <N>, ...) next to "
           "the definition";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    if (!pin_dir(f)) return;
    const WireStructScan scan = scan_wire_structs(f);
    for (const auto& ws : scan.wire_structs) {
      if (scan.asserted_names.count(ws.name) == 0) {
        out.push_back({f.path, ws.line, std::string(id()),
                       "on-wire struct '" + ws.name +
                           "' has no static_assert pinning its layout"});
      }
    }
  }
};

class WirePinRule final : public Rule {
 public:
  std::string_view id() const override { return "wire-pin"; }
  std::string_view summary() const override {
    return "on-wire structs must declare kWireBytes next to their fields";
  }
  std::string_view fix_hint() const override {
    return "declare `static constexpr std::size_t kWireBytes = <N>;` "
           "in the struct";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    if (!pin_dir(f)) return;
    const WireStructScan scan = scan_wire_structs(f);
    for (const auto& ws : scan.wire_structs) {
      if (scan.kwire_structs.count(ws.name) == 0) {
        out.push_back({f.path, ws.line, std::string(id()),
                       "on-wire struct '" + ws.name +
                           "' does not declare kWireBytes; exported "
                           "layouts must carry their size next to their "
                           "fields"});
      }
    }
  }
};

// ---------------------------------------------------------------------
// packet-value
// ---------------------------------------------------------------------

class PacketValueRule final : public Rule {
 public:
  std::string_view id() const override { return "packet-value"; }
  std::string_view summary() const override {
    return "net::Packet never crosses a function boundary by value";
  }
  std::string_view fix_hint() const override {
    return "take const Packet&/Packet&&, or call clone() at the call site";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    for (std::size_t ln = 1; ln <= f.code.size(); ++ln) {
      const std::string& code = f.code[ln - 1];
      std::size_t pos = 0;
      while ((pos = code.find("Packet", pos)) != std::string::npos) {
        const std::size_t end = pos + 6;
        const bool word_boundary =
            (pos == 0 || !is_ident_char(code[pos - 1])) &&
            (end >= code.size() || !is_ident_char(code[end]));
        if (!word_boundary) {  // ParsedPacket, PacketMeta, ...
          pos = end;
          continue;
        }
        std::size_t i = end;
        while (i < code.size() && code[i] == ' ') ++i;
        if (i >= code.size() || !is_ident_char(code[i])) {
          pos = end;
          continue;
        }
        std::size_t name_end = i;
        while (name_end < code.size() && is_ident_char(code[name_end])) {
          ++name_end;
        }
        std::size_t j = name_end;
        while (j < code.size() && code[j] == ' ') ++j;
        if (j < code.size() && (code[j] == ',' || code[j] == ')')) {
          out.push_back({f.path, ln, std::string(id()),
                         "'Packet " + code.substr(i, name_end - i) +
                             "' passed by value"});
        }
        pos = end;
      }
    }
  }
};

// ---------------------------------------------------------------------
// wallclock-ban
// ---------------------------------------------------------------------

class WallclockBanRule final : public Rule {
 public:
  std::string_view id() const override { return "wallclock-ban"; }
  std::string_view summary() const override {
    return "no wall-clock reads: simulation results must be a function "
           "of seeds and event order only";
  }
  std::string_view fix_hint() const override {
    return "use sim::Simulator::now(); wall-time measurement belongs in "
           "the bench harness (baseline the site if it IS the harness)";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    static const std::set<std::string> kBannedAnywhere = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
        "strftime"};
    static const std::set<std::string> kBannedCalls = {"time", "clock"};
    const std::vector<Token>& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdentifier) continue;
      if (kBannedAnywhere.count(t.text) != 0) {
        out.push_back({f.path, t.line, std::string(id()),
                       "wall-clock source '" + t.text +
                           "' in simulation code"});
        continue;
      }
      if (kBannedCalls.count(t.text) != 0 && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        // Skip member calls (x.time(), x->clock()), non-std qualified
        // names, and declarations (`Time time() const`): only the C
        // library functions — bare or std:: — are the hazard.
        if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == ">" ||
                      toks[i - 1].kind == Token::Kind::kIdentifier)) {
          continue;
        }
        if (i > 0 && toks[i - 1].text == ":" &&
            !(i >= 3 && toks[i - 3].text == "std")) {
          continue;
        }
        out.push_back({f.path, t.line, std::string(id()),
                       "C wall-clock call '" + t.text +
                           "()' in simulation code"});
      }
    }
  }
};

// ---------------------------------------------------------------------
// raw-rand-ban
// ---------------------------------------------------------------------

class RawRandBanRule final : public Rule {
 public:
  std::string_view id() const override { return "raw-rand-ban"; }
  std::string_view summary() const override {
    return "all randomness goes through sim::Rng (bit-stable across "
           "standard libraries)";
  }
  std::string_view fix_hint() const override {
    return "thread a seeded sim::Rng through instead";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    const std::vector<Token>& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdentifier) continue;
      if (t.text == "random_device" || t.text == "default_random_engine") {
        out.push_back({f.path, t.line, std::string(id()),
                       "'" + t.text + "' is nondeterministic or "
                       "implementation-defined; use sim::Rng"});
        continue;
      }
      if ((t.text == "rand" || t.text == "srand") && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == ">")) {
          continue;
        }
        out.push_back({f.path, t.line, std::string(id()),
                       "'" + t.text + "()' hides global state; use "
                       "sim::Rng"});
        continue;
      }
      if (t.text == "mt19937" || t.text == "mt19937_64") {
        // Seeded engines are merely discouraged (distributions still
        // vary by stdlib); *unseeded* ones are flat nondeterminism.
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].text == ":") continue;  // mt19937::
        if (j < toks.size() &&
            toks[j].kind == Token::Kind::kIdentifier) {
          ++j;  // variable name
        }
        if (j >= toks.size()) continue;
        const std::string& nxt = toks[j].text;
        const bool empty_ctor =
            (nxt == "(" || nxt == "{") && j + 1 < toks.size() &&
            (toks[j + 1].text == ")" || toks[j + 1].text == "}");
        if (nxt == ";" || nxt == "," || nxt == ")" || empty_ctor) {
          out.push_back({f.path, t.line, std::string(id()),
                         "unseeded '" + t.text +
                             "' (default seed, stdlib-dependent stream); "
                             "use sim::Rng"});
        }
      }
    }
  }
};

// ---------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------

class UnorderedIterationRule final : public Rule {
 public:
  std::string_view id() const override { return "unordered-iteration"; }
  std::string_view summary() const override {
    return "no scheduling/sending/serializing from a loop over an "
           "unordered container (hash order is not replayable)";
  }
  std::string_view fix_hint() const override {
    return "collect keys, sort deterministically, then act in sorted "
           "order";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    const std::vector<Token>& toks = f.tokens;

    // Pass A: names declared (or aliased) with an unordered container
    // type in this file or its companion header — members, locals,
    // accessors returning references, `using X = unordered_map<...>`.
    std::set<std::string> unordered_names;
    collect_unordered_names(f.decl_tokens, unordered_names);
    collect_unordered_names(toks, unordered_names);
    if (unordered_names.empty()) return;
    // Pass B: range-for loops whose range names one of those, with an
    // effectful call in the body.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
      // Find the header's matching ')' and the range-for ':'.
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (toks[j].text == ":" && depth == 1 && colon == 0) {
          const bool part_of_scope =
              toks[j - 1].text == ":" ||
              (j + 1 < toks.size() && toks[j + 1].text == ":");
          if (!part_of_scope) colon = j;
        }
      }
      if (close == 0 || colon == 0) continue;
      // Last identifier of the range expression names the container
      // (strips trailing `()` of accessor calls).
      std::string range_name;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdentifier) range_name = toks[j].text;
      }
      if (unordered_names.count(range_name) == 0) continue;
      // Loop body: `{ ... }` or a single statement up to ';'.
      std::size_t body_begin = close + 1;
      if (body_begin >= toks.size()) continue;
      std::size_t body_end = body_begin;
      if (toks[body_begin].text == "{") {
        int bdepth = 0;
        for (std::size_t j = body_begin; j < toks.size(); ++j) {
          if (toks[j].text == "{") ++bdepth;
          if (toks[j].text == "}" && --bdepth == 0) {
            body_end = j;
            break;
          }
        }
      } else {
        while (body_end < toks.size() && toks[body_end].text != ";") {
          ++body_end;
        }
      }
      // Effect = any call that is not a known order-insensitive helper.
      for (std::size_t j = body_begin; j < body_end; ++j) {
        if (toks[j].kind != Token::Kind::kIdentifier) continue;
        if (j + 1 >= toks.size() || toks[j + 1].text != "(") continue;
        if (safe_call(toks[j].text)) continue;
        out.push_back(
            {f.path, toks[i].line, std::string(id()),
             "call to '" + toks[j].text + "' while iterating unordered "
             "container '" + range_name + "' makes its effect order "
             "hash-dependent"});
        break;  // one finding per loop
      }
    }
  }

 private:
  static void collect_unordered_names(const std::vector<Token>& toks,
                                      std::set<std::string>& names) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t != "unordered_map" && t != "unordered_set" &&
          t != "unordered_multimap" && t != "unordered_multiset") {
        continue;
      }
      // `using Alias = std::unordered_map<...>`: the alias is the name.
      for (std::size_t b = i; b > 0 && b + 3 > i; --b) {
        if (toks[b - 1].text == "=" && b >= 2 &&
            toks[b - 2].kind == Token::Kind::kIdentifier) {
          names.insert(toks[b - 2].text);
          break;
        }
        if (toks[b - 1].text != ":" && toks[b - 1].text != "std") break;
      }
      // Balance the template argument list, then take the next
      // identifier as the declared name (skipping &).
      std::size_t j = i + 1;
      if (j >= toks.size() || toks[j].text != "<") continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
      while (j < toks.size() && toks[j].text == "&") ++j;
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdentifier) {
        names.insert(toks[j].text);
      }
    }
  }

  /// Calls whose observable effect does not depend on invocation order:
  /// pure accessors, accumulation into order-independent containers,
  /// and the wrap-safe PSN helpers used in selection predicates.
  static bool safe_call(const std::string& name) {
    static const std::set<std::string> kSafe = {
        // Control keywords and checks, not calls.
        "if",        "for",          "while",     "switch",   "return",
        "sizeof",    "alignof",      "decltype",  "catch",    "assert",
        "static_assert",
        "push_back", "emplace_back", "emplace",   "insert",   "erase",
        "count",     "find",         "contains",  "at",       "size",
        "empty",     "begin",        "end",       "rbegin",   "rend",
        "reserve",   "value_or",     "min",       "max",      "abs",
        "psn_lt",    "psn_ge",       "psn_add",   "psn_distance",
        // Pure per-shard deadline read used in expiry predicates.
        "shard_timeout",
        "raw",       "first",        "second",    "get",      "data",
        "c_str",     "sort",         "stable_sort", "lower_bound",
        "upper_bound", "make_pair",  "push"};
    return kSafe.count(name) != 0;
  }
};

// ---------------------------------------------------------------------
// raw-time-arith
// ---------------------------------------------------------------------

class RawTimeArithRule final : public Rule {
 public:
  std::string_view id() const override { return "raw-time-arith"; }
  std::string_view summary() const override {
    return "sim::Time values are built with the unit constructors, "
           "never raw numeric literals";
  }
  std::string_view fix_hint() const override {
    return "wrap the literal: sim::picoseconds()/nanoseconds()/"
           "microseconds()/milliseconds()/seconds()";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    if (f.ends_with("sim/time.hpp")) return;  // defines the constructors
    const std::vector<Token>& toks = f.tokens;
    auto is_zero = [](const std::string& text) {
      return text == "0" || text == "0u" || text == "0U" || text == "0l" ||
             text == "0L" || text == "0ll" || text == "0LL";
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdentifier) continue;
      // `Time name = <literal>` / `Time name{<literal>}` — covers
      // sim::Time via the preceding qualifier tokens being ignored.
      if (t.text == "Time" && i + 2 < toks.size() &&
          toks[i + 1].kind == Token::Kind::kIdentifier) {
        const std::size_t eq = i + 2;
        if ((toks[eq].text == "=" || toks[eq].text == "{") &&
            eq + 1 < toks.size() &&
            toks[eq + 1].kind == Token::Kind::kNumber &&
            !is_zero(toks[eq + 1].text)) {
          // A literal followed by unit arithmetic (e.g. `2 * kSecond`)
          // is fine; a bare literal terminated by ;/,/} is not.
          const std::string& after =
              eq + 2 < toks.size() ? toks[eq + 2].text : ";";
          if (after == ";" || after == "," || after == "}") {
            out.push_back({f.path, toks[eq + 1].line, std::string(id()),
                           "raw literal '" + toks[eq + 1].text +
                               "' assigned to sim::Time '" +
                               toks[i + 1].text + "'"});
          }
        }
      }
      // `schedule_in(<literal>` / `schedule_at(<literal>` — a raw
      // number in an explicit Time parameter position.
      if ((t.text == "schedule_in" || t.text == "schedule_at") &&
          i + 2 < toks.size() && toks[i + 1].text == "(" &&
          toks[i + 2].kind == Token::Kind::kNumber &&
          !is_zero(toks[i + 2].text)) {
        const std::string& after =
            i + 3 < toks.size() ? toks[i + 3].text : ",";
        if (after == "," || after == ")") {
          out.push_back({f.path, toks[i + 2].line, std::string(id()),
                         "raw literal '" + toks[i + 2].text + "' passed "
                         "as the delay of " + t.text + "()"});
        }
      }
    }
  }
};

// ---------------------------------------------------------------------
// mutable-global
// ---------------------------------------------------------------------

class MutableGlobalRule final : public Rule {
 public:
  std::string_view id() const override { return "mutable-global"; }
  std::string_view summary() const override {
    return "no mutable namespace-scope state (a data race once event "
           "loops go per-thread)";
  }
  std::string_view fix_hint() const override {
    return "make it constexpr/const, or move it into an object owned by "
           "the simulation";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    ScopeTracker tracker;
    const std::vector<Token>& toks = f.tokens;
    std::vector<const Token*> stmt;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      const bool ns_scope_before = tracker.at_namespace_scope();
      if (t.text == "{" && t.kind == Token::Kind::kPunct) {
        tracker.feed(t);
        // A '{' while a namespace-scope statement is open: either an
        // initializer (statement continues to ';') or a body we skip.
        if (ns_scope_before && !stmt.empty()) {
          const bool head_is_scope = is_scope_head(stmt);
          const bool has_eq = contains(stmt, "=");
          if (!has_eq || head_is_scope) {
            // Function/struct body: fast-forward to the matching '}'.
            if (head_is_scope) {
              // struct/class/enum bodies are scanned normally (they
              // matter for nested namespaces is false, but tracker
              // keeps depth honest); just drop the head.
              stmt.clear();
              continue;
            }
            std::size_t depth = tracker.depth();
            for (++i; i < toks.size(); ++i) {
              tracker.feed(toks[i]);
              if (tracker.depth() < depth) break;
            }
            stmt.clear();
            continue;
          }
          // Brace initializer: swallow to the matching '}' and keep
          // collecting the statement.
          std::size_t depth = tracker.depth();
          for (++i; i < toks.size(); ++i) {
            tracker.feed(toks[i]);
            if (tracker.depth() < depth) break;
          }
          continue;
        }
        continue;
      }
      if (t.text == "}" && t.kind == Token::Kind::kPunct) {
        tracker.feed(t);
        continue;
      }
      if (!ns_scope_before) {
        tracker.feed(t);
        continue;
      }
      if (t.text == ";" && t.kind == Token::Kind::kPunct) {
        analyze(f, stmt, out);
        stmt.clear();
        tracker.feed(t);
        continue;
      }
      stmt.push_back(&t);
      tracker.feed(t);
    }
  }

 private:
  static bool contains(const std::vector<const Token*>& stmt,
                       std::string_view text) {
    return std::any_of(stmt.begin(), stmt.end(),
                       [&](const Token* t) { return t->text == text; });
  }

  static bool is_scope_head(const std::vector<const Token*>& stmt) {
    if (stmt.empty()) return false;
    const std::string& h = stmt.front()->text;
    return h == "namespace" || h == "struct" || h == "class" ||
           h == "union" || h == "enum";
  }

  static void analyze(const FileContext& f,
                      const std::vector<const Token*>& stmt,
                      std::vector<Violation>& out) {
    if (stmt.empty()) return;
    static const std::set<std::string> kSkipHeads = {
        "using",   "typedef", "template", "extern",        "friend",
        "namespace", "struct", "class",   "union",         "enum",
        "static_assert", "operator", "return"};
    if (kSkipHeads.count(stmt.front()->text) != 0) return;
    // const-qualified (or compile-time constant) globals are fine.
    for (const Token* t : stmt) {
      if (t->text == "const" || t->text == "constexpr" ||
          t->text == "consteval") {
        return;
      }
    }
    // Function declarations: a '(' before any '='.
    std::size_t eq_pos = stmt.size();
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      if (stmt[k]->text == "=") {
        eq_pos = k;
        break;
      }
    }
    for (std::size_t k = 0; k < eq_pos; ++k) {
      if (stmt[k]->text == "(") return;
    }
    const bool has_static =
        contains(stmt, "static") || contains(stmt, "thread_local");
    std::size_t idents = 0;
    const Token* name = nullptr;
    for (std::size_t k = 0; k < eq_pos; ++k) {
      if (stmt[k]->kind == Token::Kind::kIdentifier) {
        ++idents;
        name = stmt[k];
      }
    }
    if (!has_static && eq_pos == stmt.size() && idents < 2) return;
    if (idents == 0) return;
    out.push_back({f.path, stmt.front()->line, "mutable-global",
                   "namespace-scope mutable state '" + name->text + "'"});
  }
};

// ---------------------------------------------------------------------
// env-read
// ---------------------------------------------------------------------

class EnvReadRule final : public Rule {
 public:
  std::string_view id() const override { return "env-read"; }
  std::string_view summary() const override {
    return "environment reads go through the sim::Env startup snapshot "
           "(mid-sim getenv breaks replay)";
  }
  std::string_view fix_hint() const override {
    return "use sim::env(\"NAME\") from sim/env.hpp";
  }
  void check(const FileContext& f, std::vector<Violation>& out) const override {
    if (f.ends_with("sim/env.cpp")) return;  // the shim itself
    for (const Token& t : f.tokens) {
      if (t.kind == Token::Kind::kIdentifier && t.text == "getenv") {
        out.push_back({f.path, t.line, std::string(id()),
                       "direct getenv() bypasses the sim::Env startup "
                       "snapshot"});
      }
    }
  }
};

}  // namespace

const std::vector<std::unique_ptr<Rule>>& all_rules() {
  static const std::vector<std::unique_ptr<Rule>> kRules = [] {
    std::vector<std::unique_ptr<Rule>> r;
    r.push_back(std::make_unique<PsnCompareRule>());
    r.push_back(std::make_unique<TracePairRule>());
    r.push_back(std::make_unique<WireBytesRule>());
    r.push_back(std::make_unique<WireAssertRule>());
    r.push_back(std::make_unique<WirePinRule>());
    r.push_back(std::make_unique<PacketValueRule>());
    r.push_back(std::make_unique<WallclockBanRule>());
    r.push_back(std::make_unique<RawRandBanRule>());
    r.push_back(std::make_unique<UnorderedIterationRule>());
    r.push_back(std::make_unique<RawTimeArithRule>());
    r.push_back(std::make_unique<MutableGlobalRule>());
    r.push_back(std::make_unique<EnvReadRule>());
    return r;
  }();
  return kRules;
}

const Rule* find_rule(std::string_view id) {
  for (const auto& r : all_rules()) {
    if (r->id() == id) return r.get();
  }
  return nullptr;
}

}  // namespace xmem_lint
