// Fixture: net::Packet crossing a function boundary by value. The CoW
// storage makes the copy cheap enough to hide, which is exactly why the
// lint insists ownership transfer is spelled out.
namespace net {
class Packet {};
}  // namespace net

void deliver(net::Packet packet, int port);  // BAD: by-value parameter

struct Handler {
  void on_packet(net::Packet frame) {  // BAD: by-value parameter
    (void)frame;
  }
};

// These are fine and must not trip the rule:
void inspect(const net::Packet& packet);
void consume(net::Packet&& packet);
net::Packet make_packet();

void local_decl() {
  net::Packet scratch;  // local declaration, not a parameter
  (void)scratch;
}
