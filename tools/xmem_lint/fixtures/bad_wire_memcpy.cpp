// Known-bad fixture: building a wire header by blasting struct bytes
// onto the packet instead of going through net::ByteWriter.
// xmem-lint must flag both lines below (rule: wire-bytes).
#include <cstdint>
#include <cstring>
#include <vector>

namespace fixture {

struct Bth {
  std::uint8_t opcode = 0;
  std::uint32_t psn = 0;
};

void emit(std::vector<std::uint8_t>& packet, const Bth& bth) {
  packet.resize(sizeof(Bth));
  std::memcpy(packet.data(), &bth, sizeof(bth));  // BAD
}

const Bth* peek(const std::vector<std::uint8_t>& frame) {
  return reinterpret_cast<const Bth*>(frame.data());  // BAD
}

}  // namespace fixture
