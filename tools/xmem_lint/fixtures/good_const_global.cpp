// Known-good fixture for mutable-global: compile-time constants at
// namespace scope, mutable state owned by objects (or function-local
// statics behind accessors). Must lint clean.
#include <cstdint>

namespace fixture {

constexpr std::uint64_t kMaxEvents = 1 << 20;
const int kDefaultShard = 0;
inline constexpr double kAlpha = 0.125;

struct Counters {
  std::uint64_t events = 0;  // owned, not global
};

Counters& process_counters() {
  static Counters c;  // function-local: encapsulated, lazily constructed
  return c;
}

void bump() { ++process_counters().events; }

}  // namespace fixture
