// Known-good fixture for wallclock-ban: time comes from the simulator
// clock, never the host. Must lint clean.
#include <cstdint>

namespace fixture {

using Time = std::int64_t;

struct Simulator {
  Time now_ = 0;
  [[nodiscard]] Time now() const { return now_; }
};

Time age(const Simulator& sim, Time born_at) { return sim.now() - born_at; }

// Member functions named time()/clock() are fine — only the C library
// functions read the host clock.
struct Stopwatch {
  Time start_ = 0;
  [[nodiscard]] Time time() const { return start_; }
};

Time read(const Stopwatch& sw) { return sw.time(); }

}  // namespace fixture
