// Known-good fixture for packet-value: Packet crosses function
// boundaries by reference or rvalue reference only. Must lint clean.
namespace net {
class Packet;
}

namespace fixture {

using net::Packet;

void inspect(const Packet& packet);
void consume(Packet&& packet);
void forward(const Packet& p, bool copy_ok);

}  // namespace fixture
