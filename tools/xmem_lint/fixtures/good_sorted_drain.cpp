// Known-good fixture for unordered-iteration: collect keys (pure
// accumulation is order-insensitive), sort, then act in sorted order.
// Must lint clean.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Channel {
  void repost(std::uint32_t psn);
};

struct Requester {
  std::unordered_map<std::uint32_t, std::uint64_t> inflight_;
  Channel channel_;

  void recover() {
    std::vector<std::uint32_t> keys;
    keys.reserve(inflight_.size());
    for (const auto& [psn, slot] : inflight_) keys.push_back(psn);
    std::sort(keys.begin(), keys.end());
    for (const std::uint32_t psn : keys) channel_.repost(psn);
  }
};

}  // namespace fixture
