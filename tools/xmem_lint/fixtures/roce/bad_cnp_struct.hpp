// Known-bad fixture: a CNP header extension (it has a
// serialize(ByteWriter&) member) in a roce/ path with no static_assert
// pinning its wire layout. The real roce::CnpEth pins kWireBytes == 16
// (kCnpEthBytes) — anyone extending the congestion-notification format
// must pin the new layout the same way, or the RNIC responder and the
// switch-side parser can silently disagree on the frame size.
// xmem-lint must flag the struct (rule: wire-assert).
#pragma once

#include <cstdint>

namespace net {
class ByteWriter;
}

namespace fixture {

struct CnpExtEth {
  std::uint16_t qp_hint = 0;
  std::uint8_t severity = 0;

  void serialize(net::ByteWriter& w) const;
};
// Missing: static_assert(CnpExtEth::kWireBytes == 3, "...");

}  // namespace fixture
