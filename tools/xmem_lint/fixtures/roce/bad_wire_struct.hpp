// Known-bad fixture: an on-wire struct (it has a serialize(ByteWriter&)
// member) in a roce/ path with no static_assert pinning its layout.
// xmem-lint must flag the struct (rule: wire-assert).
#pragma once

#include <cstdint>

namespace net {
class ByteWriter;
}

namespace fixture {

struct ExtHeader {
  std::uint32_t token = 0;
  std::uint16_t flags = 0;

  void serialize(net::ByteWriter& w) const;
};
// Missing: static_assert(ExtHeader::kWireBytes == 6, "...");

}  // namespace fixture
