// Known-good fixture for wire-assert + wire-pin: an on-wire struct
// with kWireBytes declared next to its fields and a static_assert
// pinning the layout. Must lint clean.
#pragma once

#include <cstddef>
#include <cstdint>

namespace net {
class ByteWriter;
}

namespace fixture {

struct GoodHeader {
  static constexpr std::size_t kWireBytes = 6;
  std::uint32_t psn_raw = 0;
  std::uint16_t flags = 0;

  void serialize(net::ByteWriter& w) const;
};

static_assert(GoodHeader::kWireBytes == 6,
              "GoodHeader wire layout is part of the interchange contract");

}  // namespace fixture
