// Known-bad fixture: raw relational operators on PSN-named values.
// xmem-lint must flag every comparison below (rule: psn-compare).
#include <cstdint>

namespace fixture {

struct Bth {
  std::uint32_t psn = 0;
};

struct QueuePair {
  std::uint32_t epsn = 0;
};

bool in_order(const Bth& bth, const QueuePair& qp) {
  return bth.psn < qp.epsn;  // BAD: wraps at 0xFFFFFF
}

bool acked(std::uint32_t last_psn, std::uint32_t acked_psn) {
  return acked_psn >= last_psn;  // BAD
}

bool window_open(std::uint32_t next_psn, std::uint32_t limit) {
  return next_psn <= limit;  // BAD
}

}  // namespace fixture
