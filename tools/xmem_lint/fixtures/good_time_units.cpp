// Known-good fixture for raw-time-arith: Time values built from the
// unit constructors (or zero, which is unit-free). Must lint clean.
#include <cstdint>

namespace fixture {

using Time = std::int64_t;

constexpr Time nanoseconds(std::int64_t v) { return v * 1000; }
constexpr Time microseconds(std::int64_t v) { return v * 1'000'000; }

struct Simulator {
  void schedule_in(Time delay, int event);
};

void arm(Simulator& sim) {
  Time start = 0;  // zero is unit-free
  Time timeout = microseconds(5);
  sim.schedule_in(nanoseconds(100), 1);
  sim.schedule_in(timeout + start, 2);
}

}  // namespace fixture
