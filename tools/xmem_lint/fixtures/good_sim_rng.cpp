// Known-good fixture for raw-rand-ban: randomness threaded through an
// explicitly seeded sim::Rng-style generator. Must lint clean.
#include <cstdint>

namespace fixture {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  std::uint64_t state_;
};

std::uint64_t jitter(Rng& rng, std::uint64_t span) {
  return rng.next() % span;
}

}  // namespace fixture
