// Known-good fixture for psn-compare: PSN ordering through the
// wrap-aware helpers, never raw relational operators. Must lint clean.
#include <cstdint>

namespace roce {
bool psn_lt(std::uint32_t a, std::uint32_t b);
bool psn_ge(std::uint32_t a, std::uint32_t b);
std::int32_t psn_distance(std::uint32_t from, std::uint32_t to);
}  // namespace roce

namespace fixture {

bool in_order(std::uint32_t psn, std::uint32_t epsn) {
  return roce::psn_lt(psn, epsn);
}

bool acked(std::uint32_t last_psn, std::uint32_t acked_psn) {
  return roce::psn_ge(acked_psn, last_psn);
}

bool window_open(std::uint32_t next_psn, std::uint32_t limit) {
  return roce::psn_distance(next_psn, limit) > 0;
}

}  // namespace fixture
