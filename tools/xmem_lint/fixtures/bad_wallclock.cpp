// Known-bad fixture: wall-clock reads in simulation code
// (rule: wallclock-ban). Results must be a function of seeds and event
// order; every line below smuggles host time in.
#include <chrono>
#include <ctime>

namespace fixture {

long long stamp_ns() {
  const auto now = std::chrono::steady_clock::now();  // BAD
  return now.time_since_epoch().count();
}

long long stamp_s() {
  return static_cast<long long>(time(nullptr));  // BAD: C library clock
}

double utc_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);  // BAD
  return static_cast<double>(ts.tv_sec);
}

}  // namespace fixture
