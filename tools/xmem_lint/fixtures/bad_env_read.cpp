// Known-bad fixture: direct environment reads (rule: env-read).
// A getenv() mid-simulation makes behavior depend on when the read
// happens; all env input goes through the sim::Env startup snapshot.
#include <cstdlib>
#include <string>

namespace fixture {

int verbosity() {
  const char* v = std::getenv("XMEM_VERBOSE");  // BAD
  return v != nullptr ? std::stoi(v) : 0;
}

bool tracing_enabled() {
  return getenv("XMEM_TRACE") != nullptr;  // BAD: unqualified too
}

}  // namespace fixture
