// Known-bad fixture: mutable namespace-scope state
// (rule: mutable-global). Every line below is a data race the day
// event loops go per-thread, and hidden cross-run coupling today.
#include <cstdint>

namespace fixture {

std::uint64_t g_events = 0;          // BAD: mutable global
static int g_last_shard = -1;        // BAD: static doesn't help
thread_local int g_depth = 0;        // BAD: still shared state per lane

struct Config {
  int retries = 3;
};
Config g_config;  // BAD: mutable global object

}  // namespace fixture
