// Known-bad fixture: a TU that opens tracer spans and never closes
// them. xmem-lint must flag the trace_begin (rule: trace-pair).
namespace fixture {

class Tracer {
 public:
  void trace_begin(int track, int psn);
};

void leak_a_span(Tracer& tracer) {
  tracer.trace_begin(0, 42);
  // No trace_complete / trace_retransmit anywhere in this TU.
}

}  // namespace fixture
