// Fixture: an exported telemetry record with a serialized wire form but
// neither a kWireBytes declaration nor a static_assert layout pin.
// Must trip both [wire-pin] and [wire-assert].
#pragma once

#include <cstdint>

#include "net/bytes.hpp"

namespace xmem::telemetry {

struct SamplePoint {
  std::uint64_t t = 0;
  double value = 0.0;

  void serialize(net::ByteWriter& w) const;
};

}  // namespace xmem::telemetry
