// Known-bad fixture: raw numeric literals as sim::Time values
// (rule: raw-time-arith). 5000 of *what*? The unit constructors make
// the magnitude readable and the picosecond base non-negotiable.
#include <cstdint>

namespace fixture {

using Time = std::int64_t;

struct Simulator {
  void schedule_in(Time delay, int event);
  void schedule_at(Time when, int event);
};

void arm(Simulator& sim) {
  Time timeout = 5000;        // BAD: 5000 of what?
  sim.schedule_in(100, 1);    // BAD: raw literal delay
  sim.schedule_at(25000, 2);  // BAD: raw literal deadline
  sim.schedule_in(timeout, 3);
}

}  // namespace fixture
