// Known-good fixture for env-read: environment input through the
// sim::Env startup snapshot. Must lint clean.
#include <optional>
#include <string>

namespace sim {
std::optional<std::string> env(const std::string& name);
}

namespace fixture {

int verbosity() {
  const std::optional<std::string> v = sim::env("XMEM_VERBOSE");
  return v.has_value() ? std::stoi(*v) : 0;
}

}  // namespace fixture
