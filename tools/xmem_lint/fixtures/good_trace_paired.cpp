// Known-good fixture for trace-pair: every TU that opens tracer spans
// also closes them. Must lint clean.
#include <cstdint>

namespace fixture {

struct Tracer {
  void trace_begin(std::uint32_t psn);
  void trace_complete(std::uint32_t psn, const char* outcome);
};

void post(Tracer& t, std::uint32_t psn) { t.trace_begin(psn); }

void ack(Tracer& t, std::uint32_t psn) { t.trace_complete(psn, "acked"); }

}  // namespace fixture
