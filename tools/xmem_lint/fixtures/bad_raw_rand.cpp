// Known-bad fixture: raw randomness sources (rule: raw-rand-ban).
// sim::Rng (xoshiro256**) is the only blessed generator — bit-stable
// across standard libraries and explicitly seeded.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  return rand() % 6;  // BAD: hidden global state
}

unsigned hardware_seed() {
  std::random_device rd;  // BAD: nondeterministic by design
  return rd();
}

unsigned default_seeded() {
  std::mt19937 gen;  // BAD: unseeded (default seed, stdlib stream)
  return gen();
}

}  // namespace fixture
