// Known-bad fixture: effectful iteration over an unordered container
// (rule: unordered-iteration). The retransmit order below follows hash
// order, so two runs replay different wire traffic.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Channel {
  void repost(std::uint32_t psn);
};

struct Requester {
  std::unordered_map<std::uint32_t, std::uint64_t> inflight_;
  Channel channel_;

  void recover() {
    for (const auto& [psn, slot] : inflight_) {
      channel_.repost(psn);  // BAD: effect order is hash order
    }
  }
};

}  // namespace fixture
