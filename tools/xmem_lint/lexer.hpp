// xmem-lint v2 lexer: a real tokenizer plus brace/namespace scope
// tracking, replacing v1's per-line regex heuristics.
//
// The lexer turns a source file into a flat token stream (identifiers,
// numbers, single-character punctuation) with comments, string/char
// literals and preprocessor lines stripped, so rules can reason about
// code structure — template-argument balancing, range-for headers,
// namespace-scope declarations — instead of pattern-matching formatted
// text. The per-line noise-stripped view of v1 is still produced (some
// rules genuinely are line-shaped: waiver comments, operator spacing),
// so both representations live side by side in FileContext.
//
// ScopeTracker consumes the token stream one token at a time and
// maintains the brace-scope stack: which '{' opened a namespace, a
// struct/class, an enum, or a plain block (function body, loop,
// initializer). Rules that care about *where* a construct lives —
// mutable-global fires only at namespace scope, wire-assert attributes
// serialize() members to their struct — drive their own tracker over
// the stream.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xmem_lint {

struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based source line.
};

/// Tokenize `source`. Comments, string/char literals (including raw
/// strings) and preprocessor directives produce no tokens. Punctuation
/// is emitted one character at a time ("::" is two ':' tokens), which
/// keeps bracket balancing trivial for the rules.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

/// Replace string/char literals and comments in one line with spaces so
/// per-line scans cannot match inside them. `in_block` carries /* */
/// state across lines. (The v1 line view; see file comment.)
[[nodiscard]] std::string strip_noise(const std::string& line,
                                      bool& in_block);

/// Brace-scope tracking over the token stream.
class ScopeTracker {
 public:
  enum class Kind { kNamespace, kStruct, kEnum, kBlock };

  struct Scope {
    Kind kind = Kind::kBlock;
    std::string name;  ///< namespace/struct/enum name ("" for blocks).
  };

  /// Feed the next token; call once per token, in stream order.
  void feed(const Token& token);

  /// Current nesting depth (number of open braces).
  [[nodiscard]] std::size_t depth() const { return stack_.size(); }

  /// True when every open scope is a namespace (or none are): the
  /// places where a declaration is a global.
  [[nodiscard]] bool at_namespace_scope() const;

  /// True when any enclosing scope is a plain block (function body,
  /// loop, initializer list).
  [[nodiscard]] bool in_block() const;

  /// Name of the innermost struct/class scope, or "" if none.
  [[nodiscard]] const std::string& innermost_struct() const;

  [[nodiscard]] const std::vector<Scope>& stack() const { return stack_; }

 private:
  std::vector<Scope> stack_;
  // Pending scope: armed when a namespace/struct/class/enum head has
  // been seen and the opening '{' is still to come. Disarmed by ';'
  // (forward declaration, alias) or consumed by '{'.
  bool pending_armed_ = false;
  Scope pending_;
  bool pending_named_ = false;
};

}  // namespace xmem_lint
