// xmem-lint: protocol-invariant static analysis for the xmem tree.
//
// Four rules, each encoding an invariant the type system alone cannot
// (or could silently stop) enforcing:
//
//   psn-compare   PSN-named values must never meet a raw relational
//                 operator: 24-bit sequence numbers wrap, so `<` is
//                 wrong half the circle away. Ordering goes through
//                 roce::psn_lt / psn_ge / psn_distance (roce/headers.hpp
//                 itself, which defines them, is exempt).
//   trace-pair    A TU that opens tracer spans (trace_begin) must also
//                 close them (trace_complete or trace_retransmit
//                 somewhere in the same TU), or every op leaks an open
//                 span.
//   wire-bytes    Wire headers are built and parsed only through the
//                 net::bytes Writer/Reader. memcpy / reinterpret_cast
//                 is banned outright under net/ and roce/, and anywhere
//                 a line touches packet/frame/wire/payload bytes.
//   wire-assert   Every on-wire struct under roce/, net/ and telemetry/
//                 (anything with a serialize(ByteWriter&) member) must
//                 be named in a static_assert pinning its wire layout.
//   wire-pin      The same structs must declare kWireBytes in-struct:
//                 exported telemetry records (INT hop records, time
//                 series points, flight events) are interchange formats
//                 read by external tooling, so their size is part of the
//                 contract and must be spelled out where the fields are.
//   packet-value  net::Packet must not cross a function boundary by
//                 value: the copy-on-write storage makes an implicit
//                 copy cheap enough to hide, so ownership transfer has
//                 to be spelled out — `const Packet&`, `Packet&&`, or an
//                 explicit clone() at the call site.
//
// Violations can be locally waived with a trailing
// `// xmem-lint: allow(<rule>)` comment — the escape hatch for the rare
// justified cast (e.g. pcap's ostream::write).
//
// The scanner is token-level, not a parser: it strips comments and
// string literals, then applies per-line and per-file checks. It relies
// on the repo's enforced formatting (binary operators spaced, template
// brackets not) to tell `a < b` from `vector<T>`.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_word(const std::string& s, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Identifier naming that marks a value as a protocol sequence number.
/// Case-sensitive on purpose: the strong type roce::Psn is fine to
/// mention anywhere; it is the lowercase *variables* that carry values.
bool psn_named(const std::string& name) {
  if (name == "psn" || name == "epsn") return true;
  if (name.size() > 4 && name.compare(name.size() - 4, 4, "_psn") == 0) {
    return true;
  }
  if (name.size() > 4 && name.compare(0, 4, "psn_") == 0) return true;
  return false;
}

/// The blessed wrap-safe helpers whose *results* may be compared.
bool blessed_psn_helper(const std::string& name) {
  static const std::set<std::string> kHelpers = {"psn_lt", "psn_ge",
                                                "psn_add", "psn_distance"};
  return kHelpers.count(name) != 0;
}

/// Replace string/char literals and comments with spaces so token scans
/// cannot match inside them. `in_block` carries /* */ state across lines.
std::string strip_noise(const std::string& line, bool& in_block) {
  std::string out(line.size(), ' ');
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) break;
    if (line.compare(i, 2, "/*") == 0) {
      in_block = true;
      i += 2;
      continue;
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      ++i;
      while (i < line.size() && line[i] != quote) {
        i += (line[i] == '\\') ? 2 : 1;
      }
      ++i;
      continue;
    }
    out[i] = line[i];
    ++i;
  }
  return out;
}

/// Does the raw line (or, for statements too long to carry a trailing
/// comment, the line right before it) carry an
/// `xmem-lint: allow(<rule>)` waiver?
bool waived(const std::string& raw_line, const std::string& prev_line,
            const std::string& rule) {
  const std::string tag = "xmem-lint: allow(" + rule + ")";
  return raw_line.find(tag) != std::string::npos ||
         prev_line.find(tag) != std::string::npos;
}

/// Walk back from `pos` (exclusive) over one operand: an identifier
/// chain (`a.b->c[i]`), or a call result (`f(...)`). Returns the final
/// name component and whether the operand is a function call.
struct Operand {
  std::string name;
  bool is_call = false;
  bool valid = false;
};

Operand left_operand(const std::string& s, std::size_t pos) {
  Operand op;
  std::size_t i = pos;
  while (i > 0 && s[i - 1] == ' ') --i;
  if (i == 0) return op;
  if (s[i - 1] == ')' || s[i - 1] == ']') {
    // Balance back across the bracketed tail, then read the name.
    int depth = 0;
    while (i > 0) {
      const char c = s[i - 1];
      if (c == ')' || c == ']') ++depth;
      if (c == '(' || c == '[') {
        --depth;
        if (depth == 0) {
          op.is_call = (c == '(');
          --i;
          break;
        }
      }
      --i;
    }
  }
  std::size_t end = i;
  while (i > 0 && is_ident_char(s[i - 1])) --i;
  if (i == end) return op;
  op.name = s.substr(i, end - i);
  op.valid = true;
  return op;
}

Operand right_operand(const std::string& s, std::size_t pos) {
  Operand op;
  std::size_t i = pos;
  while (i < s.size() && s[i] == ' ') ++i;
  // Skip dereference/address-of/sign prefixes.
  while (i < s.size() && (s[i] == '*' || s[i] == '&' || s[i] == '-' ||
                          s[i] == '+' || s[i] == '!')) {
    ++i;
  }
  std::size_t start = i;
  std::size_t name_start = i;
  while (i < s.size() &&
         (is_ident_char(s[i]) || s[i] == ':' || s[i] == '.' ||
          (s[i] == '-' && i + 1 < s.size() && s[i + 1] == '>'))) {
    if (s[i] == ':' || s[i] == '.') {
      name_start = i + 1;
    } else if (s[i] == '-') {
      ++i;  // consume the '>' of '->'
      name_start = i + 1;
    }
    ++i;
  }
  if (i == start) return op;
  op.name = s.substr(name_start, i - name_start);
  op.is_call = i < s.size() && s[i] == '(';
  op.valid = !op.name.empty();
  return op;
}

/// R1: raw relational operators over PSN-named operands. Relies on the
/// formatting convention that binary operators carry a space on both
/// sides while template angle brackets do not.
void check_psn_compare(const std::string& path, std::size_t lineno,
                       const std::string& raw, const std::string& prev,
                       const std::string& code,
                       std::vector<Violation>& out) {
  for (std::size_t i = 1; i + 1 < code.size(); ++i) {
    const char c = code[i];
    if (c != '<' && c != '>') continue;
    std::size_t op_end = i + 1;
    if (op_end < code.size() && code[op_end] == '=') ++op_end;
    // Not a binary relational op unless spaced on both sides: rules out
    // templates (`map<K, V>`), arrows, shifts and comparisons fused
    // into other tokens.
    if (code[i - 1] != ' ' || op_end >= code.size() ||
        code[op_end] != ' ') {
      continue;  // also rules out '<<', '>>', '->' and '<=>'
    }
    const Operand lhs = left_operand(code, i - 1);
    const Operand rhs = right_operand(code, op_end + 1);
    for (const Operand& operand : {lhs, rhs}) {
      if (!operand.valid || !psn_named(operand.name)) continue;
      if (operand.is_call && blessed_psn_helper(operand.name)) continue;
      if (waived(raw, prev, "psn-compare")) continue;
      out.push_back({path, lineno, "psn-compare",
                     "raw relational operator on PSN-named value '" +
                         operand.name +
                         "'; use roce::psn_lt/psn_ge/psn_distance"});
      break;
    }
  }
}

/// R3: memcpy / reinterpret_cast where wire bytes live.
void check_wire_bytes(const std::string& path, std::size_t lineno,
                      const std::string& raw, const std::string& prev,
                      const std::string& code, bool in_wire_dir,
                      std::vector<Violation>& out) {
  const bool has_cast = code.find("memcpy(") != std::string::npos ||
                        code.find("reinterpret_cast<") != std::string::npos;
  if (!has_cast || waived(raw, prev, "wire-bytes")) return;
  const bool touches_wire_words =
      contains_word(code, "packet") || contains_word(code, "frame") ||
      contains_word(code, "wire") || contains_word(code, "payload");
  if (in_wire_dir || touches_wire_words) {
    out.push_back({path, lineno, "wire-bytes",
                   "wire bytes must go through net::ByteWriter/ByteReader, "
                   "not memcpy/reinterpret_cast"});
  }
}

/// R5: `Packet <name>` in a parameter position (the identifier after the
/// type is followed by ',' or ')'). Local declarations end in '=', ';',
/// '(' or ':', so they fall through; references and templates fail the
/// next-token-is-identifier test.
void check_packet_value(const std::string& path, std::size_t lineno,
                        const std::string& raw, const std::string& prev,
                        const std::string& code,
                        std::vector<Violation>& out) {
  std::size_t pos = 0;
  while ((pos = code.find("Packet", pos)) != std::string::npos) {
    const std::size_t end = pos + 6;
    const bool word_boundary =
        (pos == 0 || !is_ident_char(code[pos - 1])) &&
        (end >= code.size() || !is_ident_char(code[end]));
    if (!word_boundary) {  // ParsedPacket, PacketMeta, ...
      pos = end;
      continue;
    }
    std::size_t i = end;
    while (i < code.size() && code[i] == ' ') ++i;
    if (i >= code.size() || !is_ident_char(code[i])) {  // 'Packet&', '<...>'
      pos = end;
      continue;
    }
    std::size_t name_end = i;
    while (name_end < code.size() && is_ident_char(code[name_end])) {
      ++name_end;
    }
    std::size_t j = name_end;
    while (j < code.size() && code[j] == ' ') ++j;
    if (j < code.size() && (code[j] == ',' || code[j] == ')') &&
        !waived(raw, prev, "packet-value")) {
      out.push_back({path, lineno, "packet-value",
                     "'Packet " + code.substr(i, name_end - i) +
                         "' passed by value; use const Packet&, Packet&&, "
                         "or an explicit clone() at the call site"});
    }
    pos = end;
  }
}

struct FileReport {
  std::vector<Violation> violations;
};

bool in_dir(const std::string& path, const std::string& dir) {
  return path.find("/" + dir + "/") != std::string::npos ||
         path.compare(0, dir.size() + 1, dir + "/") == 0;
}

void lint_file(const fs::path& file, std::vector<Violation>& out) {
  std::ifstream in(file);
  if (!in) {
    out.push_back({file.string(), 0, "io", "cannot open file"});
    return;
  }
  const std::string path = file.generic_string();
  const bool wire_dir = in_dir(path, "net") || in_dir(path, "roce");
  // Exported telemetry structs are wire formats too (external tools
  // parse them), so they get the same layout-pin treatment.
  const bool pin_dir = wire_dir || in_dir(path, "telemetry");
  const bool psn_defs_file =
      path.size() >= 16 &&
      path.compare(path.size() - 16, 16, "roce/headers.hpp") == 0;

  std::string rawline;
  std::string prevline;
  std::size_t lineno = 0;
  bool in_block = false;

  // trace-pair state.
  std::size_t first_begin_line = 0;
  bool begin_waived = false;
  bool has_complete = false;

  // wire-assert state: struct nesting and serialize() attribution.
  struct OpenStruct {
    std::string name;
    int depth = 0;
  };
  std::vector<OpenStruct> struct_stack;
  int depth = 0;
  struct WireStruct {
    std::string name;
    std::size_t line = 0;
    bool waived = false;      // xmem-lint: allow(wire-assert)
    bool pin_waived = false;  // xmem-lint: allow(wire-pin)
  };
  std::vector<WireStruct> wire_structs;
  std::vector<std::string> asserted;  // static_assert text blocks
  std::set<std::string> kwire_structs;  // structs declaring kWireBytes
  bool in_assert = false;

  while (std::getline(in, rawline)) {
    ++lineno;
    const std::string code = strip_noise(rawline, in_block);

    if (!psn_defs_file) {
      check_psn_compare(path, lineno, rawline, prevline, code, out);
    }
    check_wire_bytes(path, lineno, rawline, prevline, code, wire_dir, out);
    check_packet_value(path, lineno, rawline, prevline, code, out);

    if (code.find("trace_begin") != std::string::npos) {
      if (first_begin_line == 0) first_begin_line = lineno;
      begin_waived =
          begin_waived || waived(rawline, prevline, "trace-pair");
    }
    if (code.find("trace_complete") != std::string::npos ||
        code.find("trace_retransmit") != std::string::npos) {
      has_complete = true;
    }

    if (pin_dir) {
      // Track struct scopes well enough to attribute serialize() members.
      const int depth_before = depth;
      for (const char c : code) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      for (const char* kw : {"struct ", "class "}) {
        std::size_t pos = code.find(kw);
        if (pos == std::string::npos) continue;
        if (pos >= 5 && code.compare(pos - 5, 5, "enum ") == 0) continue;
        std::size_t n = pos + std::string(kw).size();
        std::size_t name_end = n;
        while (name_end < code.size() && is_ident_char(code[name_end])) {
          ++name_end;
        }
        if (name_end == n) continue;
        if (code.find('{', name_end) == std::string::npos) continue;
        struct_stack.push_back(
            {code.substr(n, name_end - n), depth_before + 1});
      }
      while (!struct_stack.empty() && depth < struct_stack.back().depth) {
        struct_stack.pop_back();
      }
      if (code.find("serialize(") != std::string::npos &&
          code.find("ByteWriter") != std::string::npos &&
          !struct_stack.empty()) {
        wire_structs.push_back({struct_stack.back().name, lineno,
                                waived(rawline, prevline, "wire-assert"),
                                waived(rawline, prevline, "wire-pin")});
      }
      if (contains_word(code, "kWireBytes") && !struct_stack.empty()) {
        kwire_structs.insert(struct_stack.back().name);
      }
      if (code.find("static_assert") != std::string::npos) in_assert = true;
      if (in_assert) {
        if (asserted.empty() ||
            code.find("static_assert") != std::string::npos) {
          asserted.emplace_back();
        }
        asserted.back() += code + "\n";
        if (code.find(';') != std::string::npos) in_assert = false;
      }
    }
    prevline = rawline;
  }

  if (first_begin_line != 0 && !has_complete && !begin_waived) {
    out.push_back({path, first_begin_line, "trace-pair",
                   "trace_begin without trace_complete/trace_retransmit in "
                   "this TU leaks open spans"});
  }
  for (const WireStruct& ws : wire_structs) {
    if (!ws.waived) {
      const bool pinned =
          std::any_of(asserted.begin(), asserted.end(),
                      [&](const std::string& block) {
                        return contains_word(block, ws.name);
                      });
      if (!pinned) {
        out.push_back({path, ws.line, "wire-assert",
                       "on-wire struct '" + ws.name +
                           "' has no static_assert pinning its layout"});
      }
    }
    if (!ws.pin_waived && kwire_structs.count(ws.name) == 0) {
      out.push_back({path, ws.line, "wire-pin",
                     "on-wire struct '" + ws.name +
                         "' does not declare kWireBytes; exported layouts "
                         "must carry their size next to their fields"});
    }
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: xmem_lint <file-or-dir>...\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const fs::path& f : files) lint_file(f, violations);

  for (const Violation& v : violations) {
    std::cerr << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << "xmem-lint: " << files.size() << " files, "
            << violations.size() << " violation"
            << (violations.size() == 1 ? "" : "s") << "\n";
  return violations.empty() ? 0 : 1;
}
