// xmem-lint v2 driver.
//
// Usage:
//   xmem-lint [options] <file-or-dir>...
//
// Options:
//   --json                 machine-readable report on stdout (CI)
//   --github               GitHub workflow-command annotations on stdout
//   --severity RULE=LEVEL  override a rule's severity (error|warn|off)
//   --baseline FILE        suppress findings matched by the baseline
//   --write-baseline FILE  write all current findings as the new baseline
//   --list-rules           print the registry (id, severity, summary)
//
// The rules live in rules.cpp (six protocol rules carried over from v1,
// six determinism rules; see DESIGN.md §11 and §16); the tokenizer and
// scope tracker live in lexer.cpp. This file owns file discovery,
// filtering and reporting.
//
// Filtering order for each finding: inline waiver comment
// (`// xmem-lint: allow(<rule>)` on the same or previous line) → severity
// override (off drops, warn reports without failing) → baseline match.
// The exit status is 1 only when an error-severity finding survives all
// three, or when the baseline has gone stale. Baseline entries are
// (rule, path-suffix, trimmed line text), so they survive line-number
// drift; entries that matched nothing are reported and fail the run so
// the baseline only ever shrinks.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;
using xmem_lint::FileContext;
using xmem_lint::Severity;
using xmem_lint::Violation;

namespace {

struct Options {
  bool json = false;
  bool github = false;
  bool list_rules = false;
  std::string baseline_path;
  std::string write_baseline_path;
  std::map<std::string, Severity> severity;  // rule id -> override
  std::vector<std::string> paths;
};

struct BaselineEntry {
  std::string rule;
  std::string path_suffix;
  std::string content;  // trimmed raw line text
  bool used = false;
};

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string generic_path(const fs::path& p) {
  std::string s = p.generic_string();
  if (s.compare(0, 2, "./") == 0) s.erase(0, 2);
  return s;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Collect lintable files under each argument. Fixture trees are only
/// linted when named directly (the selftest passes individual files —
/// they are violations on purpose).
std::vector<std::string> collect_files(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    const fs::path p(arg);
    if (fs::is_directory(p)) {
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && it->path().filename() == "fixtures") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(generic_path(it->path()));
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(generic_path(p));
    } else {
      std::cerr << "xmem-lint: no such path: " << arg << "\n";
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

FileContext load_file(const std::string& path) {
  FileContext ctx;
  ctx.path = path;
  std::ifstream in(path);
  std::ostringstream whole;
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ctx.raw.push_back(line);
    ctx.code.push_back(xmem_lint::strip_noise(line, in_block));
    whole << line << '\n';
  }
  ctx.tokens = xmem_lint::lex(whole.str());
  // Companion header: declarations visible to this TU's loops.
  fs::path hdr(path);
  if (hdr.extension() == ".cpp" || hdr.extension() == ".cc") {
    hdr.replace_extension(".hpp");
    std::ifstream hin(hdr);
    if (hin) {
      std::ostringstream hs;
      hs << hin.rdbuf();
      ctx.decl_tokens = xmem_lint::lex(hs.str());
    }
  }
  return ctx;
}

bool waived(const FileContext& f, const Violation& v) {
  const std::string tag = "xmem-lint: allow(" + v.rule + ")";
  if (f.raw_line(v.line).find(tag) != std::string::npos) return true;
  return v.line > 1 &&
         f.raw_line(v.line - 1).find(tag) != std::string::npos;
}

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::vector<BaselineEntry> entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "xmem-lint: cannot open baseline: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 =
        t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      std::cerr << "xmem-lint: malformed baseline line (want "
                   "rule<TAB>path<TAB>content): "
                << line << "\n";
      std::exit(2);
    }
    entries.push_back({line.substr(0, t1), line.substr(t1 + 1, t2 - t1 - 1),
                       line.substr(t2 + 1), false});
  }
  return entries;
}

bool baseline_match(const BaselineEntry& e, const FileContext& f,
                    const Violation& v) {
  if (e.rule != v.rule) return false;
  const std::string& p = v.path;
  if (p.size() < e.path_suffix.size() ||
      p.compare(p.size() - e.path_suffix.size(), e.path_suffix.size(),
                e.path_suffix) != 0) {
    return false;
  }
  return trim(f.raw_line(v.line)) == e.content;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void usage() {
  std::cerr
      << "usage: xmem-lint [--json|--github] [--severity RULE=LEVEL]...\n"
         "                 [--baseline FILE | --write-baseline FILE]\n"
         "                 [--list-rules] <file-or-dir>...\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "xmem-lint: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--github") {
      opt.github = true;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--baseline") {
      opt.baseline_path = next();
    } else if (arg == "--write-baseline") {
      opt.write_baseline_path = next();
    } else if (arg == "--severity") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "xmem-lint: --severity wants RULE=error|warn|off\n";
        return 2;
      }
      const std::string rule = spec.substr(0, eq);
      const std::string level = spec.substr(eq + 1);
      if (xmem_lint::find_rule(rule) == nullptr) {
        std::cerr << "xmem-lint: unknown rule '" << rule << "'\n";
        return 2;
      }
      Severity sev = Severity::kError;
      if (level == "warn") {
        sev = Severity::kWarn;
      } else if (level == "off") {
        sev = Severity::kOff;
      } else if (level != "error") {
        std::cerr << "xmem-lint: bad severity '" << level << "'\n";
        return 2;
      }
      opt.severity[rule] = sev;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "xmem-lint: unknown option " << arg << "\n";
      usage();
      return 2;
    } else {
      opt.paths.push_back(arg);
    }
  }

  if (opt.list_rules) {
    for (const auto& rule : xmem_lint::all_rules()) {
      Severity sev = Severity::kError;
      const auto it = opt.severity.find(std::string(rule->id()));
      if (it != opt.severity.end()) sev = it->second;
      std::cout << rule->id() << "\t" << xmem_lint::to_string(sev) << "\t"
                << rule->summary() << "\n";
    }
    return 0;
  }
  if (opt.paths.empty()) {
    usage();
    return 2;
  }

  std::vector<BaselineEntry> baseline;
  if (!opt.baseline_path.empty()) baseline = load_baseline(opt.baseline_path);

  const std::vector<std::string> files = collect_files(opt.paths);

  struct Finding {
    Violation v;
    std::string line_text;  // trimmed, for --write-baseline
    bool baselined = false;
  };
  std::vector<Finding> findings;
  std::size_t waived_count = 0;

  for (const std::string& path : files) {
    const FileContext ctx = load_file(path);
    std::vector<Violation> raw;
    for (const auto& rule : xmem_lint::all_rules()) {
      std::vector<Violation> found;
      rule->check(ctx, found);
      for (Violation& v : found) {
        v.hint = std::string(rule->fix_hint());
        raw.push_back(std::move(v));
      }
    }
    std::sort(raw.begin(), raw.end(),
              [](const Violation& a, const Violation& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    for (Violation& v : raw) {
      if (waived(ctx, v)) {
        ++waived_count;
        continue;
      }
      const auto sev_it = opt.severity.find(v.rule);
      v.severity =
          sev_it != opt.severity.end() ? sev_it->second : Severity::kError;
      if (v.severity == Severity::kOff) continue;
      Finding f{std::move(v), trim(ctx.raw_line(v.line)), false};
      for (BaselineEntry& e : baseline) {
        if (baseline_match(e, ctx, f.v)) {
          e.used = true;
          f.baselined = true;
          break;
        }
      }
      findings.push_back(std::move(f));
    }
  }

  if (!opt.write_baseline_path.empty()) {
    std::ofstream out(opt.write_baseline_path);
    out << "# xmem-lint baseline: rule<TAB>path-suffix<TAB>trimmed line.\n"
        << "# Entries suppress known legacy findings; new code must be\n"
        << "# clean. Regenerate: xmem-lint --write-baseline FILE <paths>\n";
    for (const Finding& f : findings) {
      out << f.v.rule << '\t' << f.v.path << '\t' << f.line_text << '\n';
    }
    std::cerr << "xmem-lint: wrote " << findings.size() << " entries to "
              << opt.write_baseline_path << "\n";
    return 0;
  }

  std::size_t active_errors = 0;
  std::size_t baselined_count = 0;
  for (const Finding& f : findings) {
    if (f.baselined) {
      ++baselined_count;
    } else if (f.v.severity == Severity::kError) {
      ++active_errors;
    }
  }

  std::vector<std::string> stale;
  for (const BaselineEntry& e : baseline) {
    if (!e.used) {
      stale.push_back(e.rule + "\t" + e.path_suffix + "\t" + e.content);
    }
  }

  if (opt.json) {
    std::ostream& os = std::cout;
    os << "{\n  \"findings\": [";
    bool first = true;
    for (const Finding& f : findings) {
      if (f.baselined) continue;
      os << (first ? "" : ",") << "\n    {\"path\": \""
         << json_escape(f.v.path) << "\", \"line\": " << f.v.line
         << ", \"rule\": \"" << json_escape(f.v.rule)
         << "\", \"severity\": \"" << xmem_lint::to_string(f.v.severity)
         << "\", \"message\": \"" << json_escape(f.v.message)
         << "\", \"hint\": \"" << json_escape(f.v.hint) << "\"}";
      first = false;
    }
    os << "\n  ],\n  \"summary\": {\"files\": " << files.size()
       << ", \"violations\": " << (findings.size() - baselined_count)
       << ", \"baselined\": " << baselined_count
       << ", \"waived\": " << waived_count
       << ", \"stale_baseline\": " << stale.size()
       << ", \"errors\": " << active_errors << "}\n}\n";
  } else if (opt.github) {
    for (const Finding& f : findings) {
      if (f.baselined) continue;
      const char* level =
          f.v.severity == Severity::kError ? "error" : "warning";
      std::cout << "::" << level << " file=" << f.v.path
                << ",line=" << f.v.line << ",title=xmem-lint " << f.v.rule
                << "::" << f.v.message << " (fix: " << f.v.hint << ")\n";
    }
  } else {
    for (const Finding& f : findings) {
      if (f.baselined) continue;
      std::cerr << f.v.path << ":" << f.v.line << ": [" << f.v.rule << "] "
                << f.v.message << "\n    fix: " << f.v.hint << "\n";
    }
  }

  for (const std::string& s : stale) {
    std::cerr << "xmem-lint: stale baseline entry (matched nothing): " << s
              << "\n";
  }

  if (!opt.json) {
    std::cerr << "xmem-lint: " << files.size() << " files, "
              << (findings.size() - baselined_count) << " violations ("
              << baselined_count << " baselined, " << waived_count
              << " waived)\n";
  }

  if (!stale.empty()) return 1;
  return active_errors == 0 ? 0 : 1;
}
