// xmem-lint v2 rule registry.
//
// Each rule is a self-contained class: an id (the name used in waiver
// comments, baseline entries and --severity overrides), a one-line
// summary, a fix hint appended to every finding, and a check() pass
// over one file. Rules see the file through FileContext — raw lines
// (waiver comments live there), noise-stripped lines (v1-style line
// scans) and the token stream (scope-aware analysis) — and append
// Violations; the driver owns waiver/baseline/severity filtering.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace xmem_lint {

enum class Severity { kError, kWarn, kOff };

[[nodiscard]] std::string_view to_string(Severity s);

struct Violation {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  // Filled by the driver from the rule + severity config.
  Severity severity = Severity::kError;
  std::string hint;
};

/// Everything a rule may look at for one file.
struct FileContext {
  std::string path;  ///< generic (forward-slash) path as passed.
  std::vector<std::string> raw;   ///< raw source lines.
  std::vector<std::string> code;  ///< noise-stripped lines (same indices).
  std::vector<Token> tokens;      ///< token stream (see lexer.hpp).
  /// Token stream of the companion header (x.hpp next to x.cpp), when
  /// one exists. Declaration-collecting rules (unordered-iteration)
  /// scan it so member containers declared in the header are known when
  /// the .cpp's loops are checked. Never reported against.
  std::vector<Token> decl_tokens;

  /// Is the file under directory `dir` (any path component)?
  [[nodiscard]] bool in_dir(const std::string& dir) const;
  /// Does the path end with `suffix`?
  [[nodiscard]] bool ends_with(std::string_view suffix) const;
  /// Raw text of 1-based line `line` ("" out of range).
  [[nodiscard]] const std::string& raw_line(std::size_t line) const;
};

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view id() const = 0;
  [[nodiscard]] virtual std::string_view summary() const = 0;
  [[nodiscard]] virtual std::string_view fix_hint() const = 0;
  virtual void check(const FileContext& file,
                     std::vector<Violation>& out) const = 0;
};

/// The full registry, in reporting order: six protocol rules (v1
/// heritage) then the six determinism/concurrency rules.
[[nodiscard]] const std::vector<std::unique_ptr<Rule>>& all_rules();

/// Find a rule by id; nullptr when unknown.
[[nodiscard]] const Rule* find_rule(std::string_view id);

}  // namespace xmem_lint
