#!/usr/bin/env bash
# xmem-lint self-test: the analyzer must pass the real tree and fail on
# every known-bad fixture (catching each fixture's specific rule).
#
# Usage: selftest.sh <path-to-xmem_lint-binary> <repo-root>
set -euo pipefail

LINT="$1"
ROOT="$2"
FIXTURES="$ROOT/tools/xmem_lint/fixtures"

fail() {
  echo "xmem-lint selftest: $*" >&2
  exit 1
}

# 1. The real tree is clean.
"$LINT" "$ROOT/src" >/dev/null || fail "src/ should lint clean"

# 2. Each fixture trips its rule.
expect_rule() {
  local fixture="$1" rule="$2" out
  out=$("$LINT" "$fixture" 2>&1 >/dev/null) &&
    fail "$fixture should have violations"
  grep -q "\[$rule\]" <<<"$out" ||
    fail "$fixture should trip rule '$rule' (got: $out)"
}

expect_rule "$FIXTURES/bad_psn_compare.cpp" psn-compare
expect_rule "$FIXTURES/bad_trace_unpaired.cpp" trace-pair
expect_rule "$FIXTURES/bad_wire_memcpy.cpp" wire-bytes
expect_rule "$FIXTURES/roce/bad_wire_struct.hpp" wire-assert
expect_rule "$FIXTURES/roce/bad_cnp_struct.hpp" wire-assert
expect_rule "$FIXTURES/telemetry/bad_export_struct.hpp" wire-pin
expect_rule "$FIXTURES/bad_packet_by_value.cpp" packet-value

# 3. The waiver comment suppresses (tested on a generated snippet).
tmp=$(mktemp --suffix=.cpp)
trap 'rm -f "$tmp"' EXIT
cat >"$tmp" <<'EOF'
#include <cstring>
void f(unsigned char* packet, const void* h) {
  std::memcpy(packet, h, 4);  // xmem-lint: allow(wire-bytes)
}
EOF
"$LINT" "$tmp" >/dev/null || fail "allow() waiver should suppress"

echo "xmem-lint selftest: OK"
