#!/usr/bin/env bash
# xmem-lint v2 self-test: the analyzer must pass the real tree (with
# the checked-in baseline), trip every rule on its bad fixture, stay
# silent on every good fixture, and honor the waiver/severity/baseline/
# output plumbing.
#
# Usage: selftest.sh <path-to-xmem_lint-binary> <repo-root>
set -euo pipefail

LINT="$1"
ROOT="$2"
FIXTURES="$ROOT/tools/xmem_lint/fixtures"
BASELINE="$ROOT/tools/xmem_lint/baseline.txt"

fail() {
  echo "xmem-lint selftest: $*" >&2
  exit 1
}

# 1. The real tree is clean modulo the checked-in baseline (and the
#    baseline has no stale entries — the run fails on those too).
"$LINT" --baseline "$BASELINE" \
  "$ROOT/src" "$ROOT/tools" "$ROOT/bench" "$ROOT/examples" "$ROOT/tests" \
  >/dev/null || fail "tree should lint clean against the baseline"

# 2. Every rule trips on its bad fixture...
expect_rule() {
  local fixture="$1" rule="$2" out
  out=$("$LINT" "$fixture" 2>&1 >/dev/null) &&
    fail "$fixture should have violations"
  grep -q "\[$rule\]" <<<"$out" ||
    fail "$fixture should trip rule '$rule' (got: $out)"
}

expect_rule "$FIXTURES/bad_psn_compare.cpp" psn-compare
expect_rule "$FIXTURES/bad_trace_unpaired.cpp" trace-pair
expect_rule "$FIXTURES/bad_wire_memcpy.cpp" wire-bytes
expect_rule "$FIXTURES/roce/bad_wire_struct.hpp" wire-assert
expect_rule "$FIXTURES/roce/bad_cnp_struct.hpp" wire-assert
expect_rule "$FIXTURES/telemetry/bad_export_struct.hpp" wire-pin
expect_rule "$FIXTURES/bad_packet_by_value.cpp" packet-value
expect_rule "$FIXTURES/bad_wallclock.cpp" wallclock-ban
expect_rule "$FIXTURES/bad_raw_rand.cpp" raw-rand-ban
expect_rule "$FIXTURES/bad_unordered_iteration.cpp" unordered-iteration
expect_rule "$FIXTURES/bad_raw_time.cpp" raw-time-arith
expect_rule "$FIXTURES/bad_mutable_global.cpp" mutable-global
expect_rule "$FIXTURES/bad_env_read.cpp" env-read

# 3. ...and stays silent on its good twin.
expect_clean() {
  local fixture="$1"
  "$LINT" "$fixture" >/dev/null 2>&1 ||
    fail "$fixture should lint clean"
}

expect_clean "$FIXTURES/good_psn_helpers.cpp"
expect_clean "$FIXTURES/good_trace_paired.cpp"
expect_clean "$FIXTURES/roce/good_wire_struct.hpp"
expect_clean "$FIXTURES/good_packet_ref.cpp"
expect_clean "$FIXTURES/good_simtime.cpp"
expect_clean "$FIXTURES/good_sim_rng.cpp"
expect_clean "$FIXTURES/good_sorted_drain.cpp"
expect_clean "$FIXTURES/good_time_units.cpp"
expect_clean "$FIXTURES/good_const_global.cpp"
expect_clean "$FIXTURES/good_env_shim.cpp"

# 4. The inline waiver comment suppresses.
tmp=$(mktemp --suffix=.cpp)
tmp_baseline=$(mktemp --suffix=.txt)
trap 'rm -f "$tmp" "$tmp_baseline"' EXIT
cat >"$tmp" <<'EOF'
#include <cstring>
void f(unsigned char* packet, const void* h) {
  std::memcpy(packet, h, 4);  // xmem-lint: allow(wire-bytes)
}
EOF
"$LINT" "$tmp" >/dev/null || fail "allow() waiver should suppress"

# 5. Severity plumbing: off drops the finding, warn reports but passes.
"$LINT" --severity wallclock-ban=off --severity raw-rand-ban=off \
  "$FIXTURES/bad_wallclock.cpp" "$FIXTURES/bad_raw_rand.cpp" \
  >/dev/null 2>&1 || fail "--severity off should drop findings"
"$LINT" --severity wallclock-ban=warn "$FIXTURES/bad_wallclock.cpp" \
  >/dev/null 2>&1 || fail "--severity warn should not fail the run"

# 6. Baseline plumbing: a matching entry suppresses; a stale entry
#    fails the run (the baseline only ever shrinks).
"$LINT" --write-baseline "$tmp_baseline" "$FIXTURES/bad_wallclock.cpp" \
  >/dev/null 2>&1
"$LINT" --baseline "$tmp_baseline" "$FIXTURES/bad_wallclock.cpp" \
  >/dev/null 2>&1 || fail "baselined findings should suppress"
printf 'wallclock-ban\tno/such/file.cpp\tnothing matches this\n' \
  >>"$tmp_baseline"
"$LINT" --baseline "$tmp_baseline" "$FIXTURES/bad_wallclock.cpp" \
  >/dev/null 2>&1 && fail "stale baseline entries should fail the run"

# 7. --json is valid JSON with the right shape; --list-rules names all
#    twelve rules. (Capture first: the lint exits 1 on findings, which
#    pipefail would otherwise turn into a selftest failure.)
json_out=$("$LINT" --json "$FIXTURES/bad_wallclock.cpp" || true)
python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["summary"]["violations"] >= 3, doc
assert all(f["rule"] == "wallclock-ban" for f in doc["findings"]), doc
assert {"path", "line", "rule", "severity", "message", "hint"} \
    <= set(doc["findings"][0]), doc
' <<<"$json_out" || fail "--json output should be valid and well-shaped"

[ "$("$LINT" --list-rules | wc -l)" -eq 12 ] ||
  fail "--list-rules should name 12 rules"

echo "xmem-lint selftest: OK"
