#include "lexer.hpp"

#include <cctype>

namespace xmem_lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::string strip_noise(const std::string& line, bool& in_block) {
  std::string out(line.size(), ' ');
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) break;
    if (line.compare(i, 2, "/*") == 0) {
      in_block = true;
      i += 2;
      continue;
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      ++i;
      while (i < line.size() && line[i] != quote) {
        i += (line[i] == '\\') ? 2 : 1;
      }
      ++i;
      continue;
    }
    out[i] = line[i];
    ++i;
  }
  return out;
}

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto at = [&](std::size_t k) { return k < n ? source[k] : '\0'; };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: swallow to end of line, honoring \-line
    // continuations (their contents are not program tokens).
    if (c == '#') {
      while (i < n) {
        if (source[i] == '\\' && at(i + 1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (source[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Comments.
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(source[i] == '*' && at(i + 1) == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && at(i + 1) == '"' &&
        (tokens.empty() || i == 0 || !ident_char(source[i - 1]))) {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(') delim += source[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = source.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (source[k] == '\n') ++line;
      }
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literals (no tokens; escapes honored).
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\') {
          ++i;
          if (i < n && source[i] == '\n') ++line;
          ++i;
        } else {
          if (source[i] == '\n') ++line;  // unterminated; stay sane
          ++i;
        }
      }
      ++i;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(source[j])) ++j;
      tokens.push_back({Token::Kind::kIdentifier, source.substr(i, j - i),
                        line});
      i = j;
      continue;
    }
    // Number: integer / float / hex, with C++14 digit separators. A
    // separator quote is part of the number only when squeezed between
    // digits, so '5' (a char literal) never gets eaten here.
    if (digit(c) || (c == '.' && digit(at(i + 1)))) {
      std::size_t j = i;
      while (j < n) {
        const char d = source[j];
        if (ident_char(d) || d == '.') {
          ++j;
          continue;
        }
        if (d == '\'' && j > i && ident_char(source[j - 1]) &&
            ident_char(at(j + 1))) {
          ++j;  // digit separator
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = source[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;  // exponent sign
            continue;
          }
        }
        break;
      }
      tokens.push_back({Token::Kind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Everything else: one punct character per token.
    tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return tokens;
}

void ScopeTracker::feed(const Token& token) {
  if (token.kind == Token::Kind::kPunct) {
    const char c = token.text[0];
    if (c == '{') {
      if (pending_armed_) {
        stack_.push_back(pending_);
        pending_armed_ = false;
      } else {
        stack_.push_back({Kind::kBlock, ""});
      }
      return;
    }
    if (c == '}') {
      if (!stack_.empty()) stack_.pop_back();
      return;
    }
    if (c == ';' || c == '=' || c == '(') {
      // Forward declaration, alias, `struct X x;`, or a parameter of
      // struct type: the armed scope head never opens.
      pending_armed_ = false;
      return;
    }
    return;
  }
  if (token.kind != Token::Kind::kIdentifier) return;
  const std::string& t = token.text;
  if (t == "namespace") {
    pending_armed_ = true;
    pending_ = {Kind::kNamespace, ""};
    pending_named_ = false;
    return;
  }
  if (t == "struct" || t == "class" || t == "union") {
    pending_armed_ = true;
    pending_ = {Kind::kStruct, ""};
    pending_named_ = false;
    return;
  }
  if (t == "enum") {
    pending_armed_ = true;
    pending_ = {Kind::kEnum, ""};
    pending_named_ = false;
    return;
  }
  if (pending_armed_ && !pending_named_ && t != "final" && t != "class") {
    // First identifier after the scope keyword names the scope
    // ("enum class X": the 'class' above keeps waiting for X).
    pending_.name = t;
    pending_named_ = true;
  }
}

bool ScopeTracker::at_namespace_scope() const {
  for (const Scope& s : stack_) {
    if (s.kind != Kind::kNamespace) return false;
  }
  return true;
}

bool ScopeTracker::in_block() const {
  for (const Scope& s : stack_) {
    if (s.kind == Kind::kBlock) return true;
  }
  return false;
}

const std::string& ScopeTracker::innermost_struct() const {
  static const std::string kEmpty;
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->kind == Kind::kStruct) return it->name;
  }
  return kEmpty;
}

}  // namespace xmem_lint
